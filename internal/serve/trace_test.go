package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// postBatchTraced posts one batch with a client traceparent and returns the
// response, decoded body, and the traceparent header the server answered
// with.
func postBatchTraced(t *testing.T, url, traceparent string, req BatchRequest) (*http.Response, *BatchResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		hreq.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp, &br, resp.Header.Get("traceparent")
}

// TestTraceparentRoundTrip is the tentpole's correlation check: a request
// carrying a W3C traceparent joins that trace, answers with its own root
// span under the caller's span, and the flight recorder retains a span
// tree — serve admission, analysis, the engine batch, its workers, and the
// prover's per-query spans — that parents correctly all the way down.
func TestTraceparentRoundTrip(t *testing.T) {
	const client = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, br, echoed := postBatchTraced(t, ts.URL, client, BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	// The response header continues the client's trace under a fresh span.
	tc, ok := telemetry.ParseTraceparent(echoed)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echoed)
	}
	if got := tc.TraceID.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("response trace id = %s, want the client's", got)
	}
	if tc.SpanID.String() == "b7ad6b7169203331" {
		t.Error("response span id echoes the client's span; want the server's root span")
	}
	if br.Stats.TraceID != tc.TraceID.String() {
		t.Errorf("stats.trace_id = %q, want %q", br.Stats.TraceID, tc.TraceID.String())
	}

	// The first request is by definition among the K slowest, so the
	// recorder has its span tree.
	snap := srv.FlightSnapshot()
	if len(snap.Slowest) != 1 {
		t.Fatalf("flight recorder holds %d slow records, want 1", len(snap.Slowest))
	}
	rec := snap.Slowest[0]
	if rec.TraceID != tc.TraceID.String() {
		t.Errorf("flight record trace id = %q, want %q", rec.TraceID, tc.TraceID.String())
	}
	if rec.Traceparent != echoed {
		t.Errorf("flight record traceparent = %q, want %q", rec.Traceparent, echoed)
	}

	byID := map[string]telemetry.SpanRecord{}
	byName := map[string][]telemetry.SpanRecord{}
	for _, sp := range rec.Spans {
		byID[sp.ID] = sp
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, want := range []string{"serve.request", "serve.admission", "serve.analyze", "serve.batch", "engine.worker", "prover.prove"} {
		if len(byName[want]) == 0 {
			t.Fatalf("span %q missing from tree (have %d spans)", want, len(rec.Spans))
		}
	}
	root := byName["serve.request"][0]
	if root.Parent != "b7ad6b7169203331" {
		t.Errorf("root span parent = %q, want the client's span id", root.Parent)
	}
	if root.ID != tc.SpanID.String() {
		t.Errorf("root span id = %s, but the response header says %s", root.ID, tc.SpanID.String())
	}
	for _, name := range []string{"serve.admission", "serve.analyze", "serve.batch"} {
		for _, sp := range byName[name] {
			if sp.Parent != root.ID {
				t.Errorf("%s parented under %q, want the root span %q", name, sp.Parent, root.ID)
			}
		}
	}
	batch := byName["serve.batch"][0]
	for _, sp := range byName["engine.worker"] {
		if sp.Parent != batch.ID {
			t.Errorf("engine.worker parented under %q, want serve.batch %q", sp.Parent, batch.ID)
		}
	}
	workers := map[string]bool{}
	for _, sp := range byName["engine.worker"] {
		workers[sp.ID] = true
	}
	for _, sp := range byName["prover.prove"] {
		if !workers[sp.Parent] {
			t.Errorf("prover.prove parented under %q, not any engine.worker span", sp.Parent)
		}
	}

	// A headerless (or malformed) request gets a freshly minted trace.
	_, _, minted := postBatchTraced(t, ts.URL, "garbage", BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"},
	})
	mtc, ok := telemetry.ParseTraceparent(minted)
	if !ok {
		t.Fatalf("minted traceparent %q does not parse", minted)
	}
	if mtc.TraceID == tc.TraceID {
		t.Error("fresh request reused the previous trace id")
	}
}

// TestMetricsPrometheusExposition: /metrics must parse as Prometheus text
// exposition and carry the registry's instruments, the server families,
// the per-reason degraded counters, and the per-axiom-set families.
func TestMetricsPrometheusExposition(t *testing.T) {
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	srv := New(Config{Telemetry: tel})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, br := postBatch(t, ts.URL, BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"},
	}); len(br.Results) == 0 {
		t.Fatal("no results")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidatePrometheus(data); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, data)
	}
	for _, want := range []string{
		"apt_serve_requests_total 1",
		"apt_engine_queries_total",
		"apt_serve_request_ns_bucket{le=\"+Inf\"}",
		"apt_serve_request_ns_window{quantile=\"0.99\"}",
		`apt_degraded_total{reason="query_timeout"}`,
		`apt_degraded_total{reason="request_deadline"}`,
		`apt_degraded_total{reason="canceled"}`,
		"apt_engine_set_queries_total{axiom_set=",
		"apt_server_accepted_total 1",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Telemetry disabled: the server-level families still expose and still
	// validate.
	srv2 := New(Config{})
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err := telemetry.ValidatePrometheus(data2); err != nil {
		t.Fatalf("nil-telemetry /metrics invalid: %v\n%s", err, data2)
	}
	if !strings.Contains(string(data2), "apt_server_inflight 0") {
		t.Error("nil-telemetry /metrics lacks server families")
	}
}

// syncBuffer lets the test read the access log while the server may still
// be writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestAccessLogJSONL: every HTTP request — batch, metrics scrape, bad
// method — produces one structured JSONL line with method, path, status,
// and the response traceparent.
func TestAccessLogJSONL(t *testing.T) {
	var buf syncBuffer
	srv := New(Config{AccessLog: telemetry.NewTraceWriter(&buf)})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, br := postBatch(t, ts.URL, BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"},
	}); len(br.Results) == 0 {
		t.Fatal("no results")
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if resp, err := http.Get(ts.URL + "/v1/batch"); err != nil { // wrong method
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	type line struct {
		Ev          string `json:"ev"`
		Method      string `json:"method"`
		Path        string `json:"path"`
		Status      int    `json:"status"`
		Bytes       int64  `json:"bytes"`
		DurUS       int64  `json:"dur_us"`
		Traceparent string `json:"traceparent"`
	}
	var lines []line
	for _, raw := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("access log line %q: %v", raw, err)
		}
		if l.Ev != "http_access" {
			t.Errorf("line event = %q, want http_access", l.Ev)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("access log has %d lines, want 3:\n%s", len(lines), buf.String())
	}
	if l := lines[0]; l.Method != "POST" || l.Path != "/v1/batch" || l.Status != 200 || l.Bytes == 0 {
		t.Errorf("batch line = %+v", l)
	}
	if _, ok := telemetry.ParseTraceparent(lines[0].Traceparent); !ok {
		t.Errorf("batch line traceparent %q does not parse", lines[0].Traceparent)
	}
	if l := lines[1]; l.Method != "GET" || l.Path != "/healthz" || l.Status != 200 {
		t.Errorf("healthz line = %+v", l)
	}
	if l := lines[2]; l.Status != http.StatusMethodNotAllowed {
		t.Errorf("bad-method line = %+v, want 405", l)
	}
}

// TestDegradedRequestCaptured: a request whose deadline expires mid-batch
// is degraded toward Maybe, counted as a degraded request, and retained by
// the flight recorder with its per-reason profile.  A 1ms deadline against
// a cold proof search plus 4000 repeat queries (each a memo lookup, ~µs
// apiece) expires mid-batch with a wide margin, but the loop still
// tolerates an absurdly fast machine by retrying on fresh servers.
func TestDegradedRequestCaptured(t *testing.T) {
	lines := make([]string, 4000)
	for i := range lines {
		lines[i] = "between S T"
	}
	req := BatchRequest{
		Program: treeProgram(t), Fn: "subr",
		Queries:    lines,
		DeadlineMS: 1,
	}
	for attempt := 0; attempt < 25; attempt++ {
		srv := New(Config{Workers: 2})
		ts := httptest.NewServer(srv)
		resp, br := postBatch(t, ts.URL, req)
		snap := srv.FlightSnapshot()
		z := srv.StatzSnapshot()
		ts.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if br.Stats.DegradedQueries == 0 {
			continue // the search beat the deadline; try again cold
		}
		// Degraded: all the books must agree.
		if br.Stats.DeadlineExpired == 0 {
			t.Errorf("degraded_queries = %d but deadline_expired = 0: %+v",
				br.Stats.DegradedQueries, br.Stats)
		}
		if z.DegradedRequests != 1 {
			t.Errorf("statz degraded_requests = %d, want 1", z.DegradedRequests)
		}
		if snap.DegradedRecorded != 1 || len(snap.Degraded) != 1 {
			t.Fatalf("flight recorder degraded: recorded %d, held %d, want 1/1",
				snap.DegradedRecorded, len(snap.Degraded))
		}
		rec := snap.Degraded[0]
		if rec.DegradedRequestDeadline != br.Stats.DeadlineExpired {
			t.Errorf("record deadline count = %d, response says %d",
				rec.DegradedRequestDeadline, br.Stats.DeadlineExpired)
		}
		if !rec.Degraded() || len(rec.Spans) == 0 || rec.TraceID == "" {
			t.Errorf("degraded record incomplete: %+v", rec)
		}
		return
	}
	t.Skip("deadline never expired in 25 cold attempts; machine too fast for a timing-based check")
}
