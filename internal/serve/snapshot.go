package serve

import (
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/automata"
)

// Warm-handoff endpoints.  A cluster router reacting to a ring change asks
// the shard's old owner for a snapshot of its warm engine state and ships
// it to the new owner, so the move costs one artifact transfer instead of a
// cold rebuild plus a re-proved memo.  Both endpoints address engines by
// the axiom set's cross-process fingerprint — the only identity two
// processes share (see axiom.Set.Fingerprint64).

// handleSnapshot answers GET /v1/snapshot?fp=<hex fingerprint> with the
// fingerprinted engine's warm state as a binary aptc artifact (404 when no
// such engine is resident — the caller then simply lets the gaining
// backend build cold).
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSONError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	fp, err := strconv.ParseUint(r.URL.Query().Get("fp"), 16, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("fp: want a hex fingerprint: %v", err))
		return
	}
	art := s.pool.SnapshotArtifact(fp)
	if art == nil {
		writeJSONError(w, http.StatusNotFound, fmt.Sprintf("no resident engine for fingerprint %016x", fp))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	art.WriteTo(w) //nolint:errcheck // client hangup
}

// PreloadReport is the JSON body answering POST /v1/preload.
type PreloadReport struct {
	// Built counts engines this preload constructed (axiom sets from the
	// artifact that were not already resident).
	Built int `json:"built"`
	// Resident is the pool population after the preload.
	Resident int `json:"resident"`
}

// handlePreload answers POST /v1/preload (body: a binary aptc artifact) by
// building — artifact-preseeded — an engine for every axiom set the
// artifact carries.  Already-resident engines are left untouched: they are
// at least as warm as any snapshot.
func (s *Server) handlePreload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Artifacts outgrow batch bodies (they carry DFA tables); allow 64× the
	// batch body cap rather than adding another knob.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64*s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	art, err := automata.DecodeArtifact(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("artifact: %v", err))
		return
	}
	built := s.pool.PreloadArtifact(art)
	writeJSON(w, http.StatusOK, PreloadReport{Built: built, Resident: s.pool.len()})
}
