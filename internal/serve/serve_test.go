package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// treeProgram is the paper's §3.3 example (testdata/section33.c): S and T
// are provably independent under the leaf-linked binary tree axioms.
func treeProgram(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/section33.c")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// listProgram is Figure 1's list-update loop: a second axiom set, so tests
// can populate more than one engine.
func listProgram(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../testdata/figure1.c")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func postBatch(t *testing.T, url string, req BatchRequest) (*http.Response, *BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		return resp, &BatchResponse{Stats: BatchStats{AxiomSet: e.Error}}
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, &br
}

func TestBatchRoundTripWarmsCaches(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := BatchRequest{Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T", "# comment", "between S T"}}
	resp, br := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s)", resp.StatusCode, br.Stats.AxiomSet)
	}
	if len(br.Results) == 0 {
		t.Fatal("no results")
	}
	for i, r := range br.Results {
		if r.Result != "No" {
			t.Errorf("results[%d] = %q (%s), want No", i, r.Result, r.Reason)
		}
		if r.Query != "between S T" {
			t.Errorf("results[%d].Query = %q", i, r.Query)
		}
	}
	if br.Dependent {
		t.Error("Dependent = true for a provably independent pair")
	}
	if !br.Stats.ColdEngine {
		t.Error("first request should report a cold engine")
	}

	// The same request again must ride the warm engine: no cold flag, and
	// the proof memo serves the repeat.
	_, br2 := postBatch(t, ts.URL, req)
	if br2.Stats.ColdEngine {
		t.Error("second request rebuilt the engine")
	}
	if br2.Stats.MemoHits == 0 {
		t.Error("second request hit the proof memo 0 times")
	}
	if br2.Stats.ElapsedUS > br.Stats.ElapsedUS*10 {
		t.Errorf("warm request took %dus vs cold %dus", br2.Stats.ElapsedUS, br.Stats.ElapsedUS)
	}
}

func TestBatchRejectsBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()

	for name, tc := range map[string]struct {
		body string
		want int
	}{
		"not json":    {body: "between S T", want: http.StatusBadRequest},
		"no queries":  {body: `{"program":"void f() {}"}`, want: http.StatusBadRequest},
		"bad program": {body: `{"program":"int main(","queries":["between S T"]}`, want: http.StatusBadRequest},
		"bad line":    {body: `{"program":"void f() { int x; x = 1; }","queries":["frobnicate S T"]}`, want: http.StatusBadRequest},
		"bad label":   {body: `{"program":"void f() { int x; x = 1; }","queries":["between S T"]}`, want: http.StatusBadRequest},
		"two fns no fn": {body: `{"program":"void f() { int x; x = 1; } void g() { int y; y = 2; }","queries":["between S T"]}`,
			want: http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", name, resp.StatusCode, tc.want, e.Error)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error body", name)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/batch = %d, want 405", resp.StatusCode)
	}
}

// TestAdmissionShedding: with every run slot and queue position occupied,
// the next request is shed with 429 + Retry-After instead of queueing;
// when the jam clears, the queued requests are all answered.
func TestAdmissionShedding(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only run slot so admitted requests park in the queue.
	srv.run <- struct{}{}

	req := BatchRequest{Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"}}
	body, _ := json.Marshal(req)
	type result struct {
		code int
		err  error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			resp.Body.Close()
			results <- result{code: resp.StatusCode}
		}()
	}
	// Wait until both requests hold admission tokens (slots cap = 2).
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.slots) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests never filled the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-admission request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want an integer ≥ 1 second", ra)
	}
	if srv.StatzSnapshot().Shed != 1 {
		t.Errorf("Shed = %d, want 1", srv.StatzSnapshot().Shed)
	}

	// Unjam: both queued requests must complete normally.
	<-srv.run
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil || r.code != http.StatusOK {
			t.Errorf("queued request: code=%d err=%v, want 200", r.code, r.err)
		}
	}
}

// TestDrainFinishesInflight: requests admitted before the drain are
// answered; requests arriving during it get 503, and healthz flips.
func TestDrainFinishesInflight(t *testing.T) {
	srv := New(Config{MaxConcurrent: 1, QueueDepth: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	srv.run <- struct{}{} // park admitted requests in the queue

	req := BatchRequest{Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"}}
	body, _ := json.Marshal(req)
	const parked = 3
	codes := make(chan int, parked)
	for i := 0; i < parked; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.gauge.Load() < parked {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests admitted", srv.gauge.Load(), parked)
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()
	for !srv.Draining() {
		time.Sleep(time.Millisecond)
	}

	// New work is refused while draining...
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("request during drain = %d, want 503", resp.StatusCode)
	}
	if hz, err := http.Get(ts.URL + "/healthz"); err == nil {
		hz.Body.Close()
		if hz.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain = %d, want 503", hz.StatusCode)
		}
	} else {
		t.Fatal(err)
	}

	// ...but every parked request completes, and the drain observes that.
	<-srv.run
	for i := 0; i < parked; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("parked request answered %d, want 200 (in-flight work must not be dropped)", code)
		}
	}
	if err := <-drained; err != nil {
		t.Errorf("Drain: %v", err)
	}
	st := srv.StatzSnapshot()
	if st.Accepted != st.Completed || st.Inflight != 0 {
		t.Errorf("after drain: accepted=%d completed=%d inflight=%d", st.Accepted, st.Completed, st.Inflight)
	}
}

// TestPanicBecomes500: a worker panic surfacing through the handler is one
// failed request, not a dead server.
func TestPanicBecomes500(t *testing.T) {
	srv := New(Config{})
	srv.mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic(&parallel.WorkerPanic{Value: "kaboom", Stack: []byte("stack")})
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "kaboom") {
		t.Errorf("error = %q, want the worker panic value", e.Error)
	}
	if srv.StatzSnapshot().Panics != 1 {
		t.Errorf("Panics = %d, want 1", srv.StatzSnapshot().Panics)
	}

	// The server still serves.
	if hz, err := http.Get(ts.URL + "/healthz"); err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v / %v", hz, err)
	} else {
		hz.Body.Close()
	}
}

func TestMetricsAndStatzEndpoints(t *testing.T) {
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	srv := New(Config{Telemetry: tel})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, br := postBatch(t, ts.URL, BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"},
	}); len(br.Results) == 0 {
		t.Fatal("no results")
	}

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics.json decode: %v", err)
	}
	resp.Body.Close()
	for _, want := range []string{"serve.requests", "engine.queries", "automata.shared_lookups"} {
		if snap.Counters[want] == 0 {
			t.Errorf("metrics counter %q = 0, want > 0 (have %d counters)", want, len(snap.Counters))
		}
	}

	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var z Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	resp.Body.Close()
	if z.Accepted != 1 || z.EnginesResident != 1 || len(z.Engines) != 1 {
		t.Errorf("statz = %+v, want one accepted request on one engine", z)
	}
	if z.Engines[0].Queries == 0 || z.Engines[0].DFALen == 0 {
		t.Errorf("engine statz = %+v, want populated caches", z.Engines[0])
	}
}

// TestEngineLRUReclamation: the per-axiom-set engine population respects
// MaxEngines, evicting the least recently used.
func TestEngineLRUReclamation(t *testing.T) {
	srv := New(Config{MaxEngines: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	tree := BatchRequest{Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"}}
	list := BatchRequest{Program: listProgram(t), Fn: "update", Queries: []string{"loop U"}}

	if _, br := postBatch(t, ts.URL, tree); !br.Stats.ColdEngine {
		t.Error("first tree request should be cold")
	}
	if _, br := postBatch(t, ts.URL, list); !br.Stats.ColdEngine {
		t.Error("first list request should be cold")
	}
	st := srv.StatzSnapshot()
	if st.EnginesResident != 1 || st.EnginesEvicted != 1 {
		t.Errorf("resident=%d evicted=%d, want 1/1", st.EnginesResident, st.EnginesEvicted)
	}
	// The tree engine was reclaimed; using it again is a (correct) cold
	// rebuild.
	if _, br := postBatch(t, ts.URL, tree); !br.Stats.ColdEngine {
		t.Error("tree request after LRU reclamation should be cold again")
	}
}

// TestRequestScaleDeadline: a request-level deadline yields a well-formed
// 200 whose every query is answered (possibly Maybe), never a hung or
// dropped response.
func TestRequestScaleDeadline(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	var queries []string
	for i := 0; i < 16; i++ {
		queries = append(queries, "between S T")
	}
	resp, br := postBatch(t, ts.URL, BatchRequest{
		Program: treeProgram(t), Fn: "subr", Queries: queries,
		DeadlineMS: 1, TimeoutMS: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(br.Results) == 0 || len(br.Results)%16 != 0 {
		t.Fatalf("got %d results for 16 identical query lines", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Result != "No" && r.Result != "Maybe" {
			t.Errorf("results[%d] = %q, want No or the sound degradation Maybe", i, r.Result)
		}
	}
}

// TestRetryAfterScalesWithBacklog is the regression test for the constant
// Retry-After: the hint must be backlog ÷ recent completion rate, so a
// deeper jam at the same drain rate tells clients to wait longer, a faster-
// draining server tells them to come back sooner, and the floor (1s) and
// ceiling (60s) clamp the extremes.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	mk := func(depth, backlog, completions int) *Server {
		srv := New(Config{MaxConcurrent: 1, QueueDepth: depth})
		for i := 0; i < backlog; i++ {
			srv.slots <- struct{}{}
		}
		for i := 0; i < completions; i++ {
			srv.completions.Observe(1)
		}
		return srv
	}

	// No backlog, or no completions to extrapolate a rate from: the floor.
	if got := mk(10, 0, 50).retryAfterSeconds(); got != 1 {
		t.Errorf("empty backlog: Retry-After = %d, want the 1s floor", got)
	}
	if got := mk(10, 5, 0).retryAfterSeconds(); got != 1 {
		t.Errorf("no recent completions: Retry-After = %d, want the 1s floor", got)
	}

	// 20 completions in the 10s window = 2/s; a backlog of 10 should drain
	// in ~5s.
	if got := mk(20, 10, 20).retryAfterSeconds(); got != 5 {
		t.Errorf("backlog 10 at 2/s: Retry-After = %d, want 5", got)
	}

	// Scaling in backlog at a fixed rate: strictly monotone until the clamp.
	prev := 0
	for _, backlog := range []int{2, 8, 20, 40} {
		got := mk(50, backlog, 20).retryAfterSeconds()
		if got <= prev {
			t.Errorf("backlog %d: Retry-After = %d, want > %d (must grow with backlog)", backlog, got, prev)
		}
		prev = got
	}

	// Scaling in drain rate at a fixed backlog: more completions, sooner retry.
	slow := mk(50, 40, 10).retryAfterSeconds()
	fast := mk(50, 40, 100).retryAfterSeconds()
	if fast >= slow {
		t.Errorf("faster drain must shorten the hint: %ds at 10 completions vs %ds at 100", slow, fast)
	}

	// A glacial drain rate clamps at the 60s ceiling rather than announcing
	// a multi-minute outage.
	if got := mk(200, 200, 1).retryAfterSeconds(); got != 60 {
		t.Errorf("glacial drain: Retry-After = %d, want the 60s ceiling", got)
	}
}
