package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/automata"
	"repro/internal/engine"
)

// makeListProgram renders a Figure 1-style list-update loop whose link
// field carries the given name.  The field name appears in the axiom
// regexes, so each variant fingerprints as a distinct axiom set (Set.Key
// hashes axiom content, not struct names) and forces the engine pool to
// build — and LRU-reclaim — real engines.
func makeListProgram(link string) string {
	return fmt.Sprintf(`
struct Node {
	struct Node *%[1]s;
	int f;
	axioms {
		forall p <> q, p.%[1]s <> q.%[1]s;
		forall p, p.%[1]s+ <> p.eps;
	}
};

void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = fun();
		q = q->%[1]s;
	}
}
`, link)
}

// TestSoakConcurrentMixedDeadlines is the race-mode soak behind `make
// race-serve`: at least 8 concurrent clients hammer one server with mixed
// per-request deadlines across more axiom sets than the engine pool may
// keep resident, then a final wave overlaps a drain.  It asserts the
// long-lived-process invariants: every response is answered (200/429/503,
// never a hang, drop, or 500), cache and memo sizes stay under the
// per-shard caps, accepted == completed after the drain, and the admission
// counters are monotone.
func TestSoakConcurrentMixedDeadlines(t *testing.T) {
	const (
		clients    = 8
		maxEngines = 3
		shardCap   = 4
	)
	requests := 24
	if testing.Short() {
		requests = 6
	}

	srv := New(Config{
		Workers:       2,
		MaxConcurrent: 4,
		QueueDepth:    2 * clients,
		MaxEngines:    maxEngines,
		DFAShardCap:   shardCap,
		MemoShardCap:  shardCap,
		// A ring larger than the whole soak's request count, so "every
		// degraded request is retained" is checkable exactly below.
		FlightK:    5,
		FlightRing: 1024,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	type workload struct {
		req  BatchRequest
		name string
	}
	workloads := []workload{
		{name: "tree", req: BatchRequest{Program: treeProgram(t), Fn: "subr", Queries: []string{"between S T"}}},
		{name: "listLink", req: BatchRequest{Program: makeListProgram("link"), Queries: []string{"loop U"}}},
		{name: "listNext", req: BatchRequest{Program: makeListProgram("next"), Queries: []string{"loop U"}}},
		{name: "listFwd", req: BatchRequest{Program: makeListProgram("fwd"), Queries: []string{"loop U"}}},
		{name: "listSucc", req: BatchRequest{Program: makeListProgram("succ"), Queries: []string{"loop U"}}},
	}
	deadlines := []int64{0, 1, 50} // server default, pathologically tight, modest

	post := func(req BatchRequest) (int, *BatchResponse, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode, nil, nil
		}
		var br BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			return resp.StatusCode, nil, err
		}
		return resp.StatusCode, &br, nil
	}

	var (
		mu       sync.Mutex
		answered int
		shed     int
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients*requests)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				req := workloads[(c+i)%len(workloads)].req
				req.DeadlineMS = deadlines[(c*requests+i)%len(deadlines)]
				code, br, err := post(req)
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				switch code {
				case http.StatusOK:
					if len(br.Results) == 0 {
						errs <- fmt.Errorf("client %d req %d: 200 with no results", c, i)
						return
					}
					for _, r := range br.Results {
						if r.Result != "No" && r.Result != "Maybe" && r.Result != "Yes" {
							errs <- fmt.Errorf("client %d req %d: result %q", c, i, r.Result)
							return
						}
					}
					mu.Lock()
					answered++
					mu.Unlock()
				case http.StatusTooManyRequests:
					mu.Lock()
					shed++
					mu.Unlock()
				default:
					errs <- fmt.Errorf("client %d req %d: status %d", c, i, code)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	mid := srv.StatzSnapshot()
	if mid.Accepted != int64(answered) {
		t.Errorf("accepted = %d, want %d answered requests", mid.Accepted, answered)
	}
	if mid.Shed != int64(shed) {
		t.Errorf("shed = %d, want %d", mid.Shed, shed)
	}
	if mid.Panics != 0 {
		t.Errorf("panics = %d", mid.Panics)
	}
	if mid.EnginesResident > maxEngines {
		t.Errorf("engines resident = %d, cap %d", mid.EnginesResident, maxEngines)
	}
	if len(workloads) > maxEngines && mid.EnginesEvicted == 0 {
		t.Error("no engine was ever LRU-reclaimed despite axiom sets > MaxEngines")
	}
	// The whole point of the per-shard caps: a long-lived server's caches
	// must stay bounded no matter how much traffic has passed through.
	bound := automata.DefaultSharedShards * (shardCap + 1)
	memoBound := engine.DefaultMemoShards * (shardCap + 1)
	for _, e := range mid.Engines {
		if e.DFALen > bound {
			t.Errorf("engine %s: DFALen = %d exceeds %d", e.AxiomSet, e.DFALen, bound)
		}
		if e.OpsLen > bound {
			t.Errorf("engine %s: OpsLen = %d exceeds %d", e.AxiomSet, e.OpsLen, bound)
		}
		if e.MemoEntries > memoBound {
			t.Errorf("engine %s: MemoEntries = %d exceeds %d", e.AxiomSet, e.MemoEntries, memoBound)
		}
	}

	// Final wave: overlap fresh requests with a drain.  Every request must
	// get a definite answer — completed if admitted, 503 if it arrived
	// after the drain began — and none may be silently dropped.
	const wave = 2 * clients
	codes := make(chan int, wave)
	var waveWG sync.WaitGroup
	for i := 0; i < wave; i++ {
		waveWG.Add(1)
		go func(i int) {
			defer waveWG.Done()
			code, _, err := post(workloads[i%len(workloads)].req)
			if err != nil {
				code = -1
			}
			codes <- code
		}(i)
	}
	time.Sleep(time.Millisecond) // let part of the wave in before draining
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waveWG.Wait()
	close(codes)
	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("wave request answered %d", code)
		}
	}

	fin := srv.StatzSnapshot()
	if !fin.Draining {
		t.Error("statz does not report draining")
	}
	if fin.Accepted != fin.Completed {
		t.Errorf("after drain: accepted %d != completed %d (in-flight work dropped)", fin.Accepted, fin.Completed)
	}
	if fin.Inflight != 0 {
		t.Errorf("after drain: inflight = %d", fin.Inflight)
	}
	// Monotonicity: the drain never rolls a counter back.
	if fin.Accepted < mid.Accepted || fin.Completed < mid.Completed || fin.Shed < mid.Shed {
		t.Errorf("counters regressed: mid %+v fin %+v", mid, fin)
	}

	// Flight-recorder invariants under concurrency: the ring outsizes the
	// soak, so it must hold exactly the requests the server counted as
	// degraded; the slow set is bounded by K and ordered slowest-first; and
	// every retained record carries a span tree and a degradation profile
	// consistent with its bucket.
	snap := srv.FlightSnapshot()
	if snap.DegradedRecorded != fin.DegradedRequests {
		t.Errorf("flight recorder holds %d degraded requests, server counted %d",
			snap.DegradedRecorded, fin.DegradedRequests)
	}
	if int64(len(snap.Degraded)) != snap.DegradedRecorded {
		t.Errorf("degraded ring returned %d records, recorded %d (ring must not have wrapped)",
			len(snap.Degraded), snap.DegradedRecorded)
	}
	if len(snap.Slowest) > snap.K {
		t.Errorf("slow set holds %d records, cap %d", len(snap.Slowest), snap.K)
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].DurUS > snap.Slowest[i-1].DurUS {
			t.Errorf("slowest[%d] (%dus) out of order after %dus", i, snap.Slowest[i].DurUS, snap.Slowest[i-1].DurUS)
		}
	}
	for i, rec := range snap.Degraded {
		if !rec.Degraded() {
			t.Errorf("degraded[%d] has no degraded queries", i)
		}
		if len(rec.Spans) == 0 {
			t.Errorf("degraded[%d] retained no spans", i)
		}
		if rec.TraceID == "" {
			t.Errorf("degraded[%d] has no trace id", i)
		}
	}
}
