package serve

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// This file is the server's observability surface: the statusWriter that
// feeds the structured access log, the flight-recorder hookup, and the
// Prometheus rendering of the server-level and per-axiom-set state that
// lives outside the telemetry registry (admission atomics, pool contents,
// split degraded counters).

// statusWriter records the status code and body size a handler produced,
// for the access log and the flight recorder's metadata.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Status returns the written status (200 when the handler never set one).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// logAccess emits one structured access-log line (JSONL via TraceWriter);
// a nil access writer disables it.
func (s *Server) logAccess(sw *statusWriter, r *http.Request, dur time.Duration) {
	if s.access == nil {
		return
	}
	s.access.Emit("http_access",
		telemetry.String("method", r.Method),
		telemetry.String("path", r.URL.Path),
		telemetry.Int("status", sw.Status()),
		telemetry.Int64("bytes", sw.bytes),
		telemetry.DurUS("dur_us", dur),
		telemetry.String("remote", r.RemoteAddr),
		telemetry.String("traceparent", sw.Header().Get("traceparent")),
	)
}

// flightMeta is the request context a FlightRecord carries beyond its span
// tree: what ran, where, and the request's cache-hit deltas (best-effort
// under concurrency — the engine counters are shared, so a neighbor's hits
// can leak into the delta).
type flightMeta struct {
	Status      int    `json:"status"`
	AxiomSet    string `json:"axiom_set,omitempty"`
	Queries     int    `json:"queries"`
	ColdEngine  bool   `json:"cold_engine,omitempty"`
	ElapsedUS   int64  `json:"elapsed_us"`
	MemoHits    int64  `json:"memo_hits"`
	MemoLookups int64  `json:"memo_lookups"`
	DFAHits     int64  `json:"dfa_hits"`
	DFALookups  int64  `json:"dfa_lookups"`
}

// recordFlight offers the finished request to the flight recorder.  The
// record — span tree included — is only assembled when the recorder keeps
// it (slow or degraded), so the common fast request costs one atomic load.
func (s *Server) recordFlight(w http.ResponseWriter, rt *telemetry.RequestTrace, start time.Time, dur time.Duration, meta *flightMeta) {
	deg := rt.DegradedCounts()
	degraded := deg[telemetry.DegradeQueryTimeout]+deg[telemetry.DegradeRequestDeadline]+deg[telemetry.DegradeCanceled] > 0
	if degraded {
		s.degradedReqs.Add(1)
	}
	s.flight.Record(dur, degraded, func() *telemetry.FlightRecord {
		rec := &telemetry.FlightRecord{
			TraceID:                 rt.TraceIDString(),
			Traceparent:             w.Header().Get("traceparent"),
			UnixUS:                  start.UnixMicro(),
			DegradedQueryTimeout:    deg[telemetry.DegradeQueryTimeout],
			DegradedRequestDeadline: deg[telemetry.DegradeRequestDeadline],
			DegradedCanceled:        deg[telemetry.DegradeCanceled],
			Spans:                   rt.Spans(),
			DroppedSpans:            rt.DroppedSpans(),
		}
		if meta != nil {
			m := *meta
			if sw, ok := w.(*statusWriter); ok {
				m.Status = sw.Status()
			} else {
				m.Status = http.StatusOK
			}
			rec.Meta = m
		}
		return rec
	})
}

// FlightSnapshot copies the flight recorder's current state (exported for
// cmd/aptserved's SIGQUIT dump and the soak tests).
func (s *Server) FlightSnapshot() telemetry.FlightSnapshot {
	return s.flight.Snapshot()
}

// handleMetrics serves Prometheus text exposition: the telemetry registry's
// instruments plus the server-level families below.  The JSON snapshot the
// endpoint used to serve lives at /metrics.json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.Metrics().WritePrometheus(w) //nolint:errcheck // client hangup
	s.writePromServer(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.tel.Metrics().Snapshot())
}

func (s *Server) handleFlightRecorder(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.FlightSnapshot())
}

// writePromServer renders the state that lives outside the registry:
// admission/lifecycle counters, the flight recorder's totals, the
// degraded-query counters split by reason, and per-axiom-set engine
// families labeled with the set they serve.
func (s *Server) writePromServer(w io.Writer) {
	bw := bufio.NewWriter(w)
	counter := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	accepted, completed, shed, refused := s.adm.Counts()
	counter("apt_server_accepted_total", "Requests admitted.", accepted)
	counter("apt_server_completed_total", "Requests answered.", completed)
	counter("apt_server_shed_total", "Requests shed with 429 by admission control.", shed)
	counter("apt_server_refused_draining_total", "Requests refused because the server was draining.", refused)
	counter("apt_server_panics_total", "Handler panics isolated into 500s.", s.panics.Load())
	counter("apt_server_degraded_requests_total", "Requests with at least one query degraded toward Maybe.", s.degradedReqs.Load())
	counter("apt_server_engines_evicted_total", "Warm engines reclaimed by the pool LRU.", s.pool.Evicted())
	gauge("apt_server_inflight", "Requests admitted and not yet completed.", s.gauge.Load())
	gauge("apt_server_uptime_seconds", "Seconds since the server started.", int64(time.Since(s.start).Seconds()))
	gauge("apt_server_engines_resident", "Warm engines resident in the pool.", int64(s.pool.len()))
	gauge("apt_interned_exprs", "Distinct interned path expressions (never evicted).", int64(pathexpr.InternedExprs()))

	fl := s.flight.Snapshot()
	counter("apt_flight_slow_recorded_total", "Requests retained by the K-slowest flight recorder.", fl.SlowRecorded)
	counter("apt_flight_degraded_recorded_total", "Degraded requests retained by the flight-recorder ring.", fl.DegradedRecorded)

	// Degraded queries split by the interrupt guard's three reasons, summed
	// across resident engines (an evicted engine takes its counts with it;
	// the registry's engine.degraded.* counters are the process-lifetime
	// view).
	views := s.pool.snapshot()
	statz := make([]EngineStatz, len(views))
	var byReason [telemetry.NumDegradeReasons]int64
	for i, v := range views {
		statz[i] = engineStatz(v)
		byReason[telemetry.DegradeQueryTimeout] += statz[i].Timeouts
		byReason[telemetry.DegradeRequestDeadline] += statz[i].DeadlineExpired
		byReason[telemetry.DegradeCanceled] += statz[i].Canceled
	}
	fmt.Fprintf(bw, "# HELP apt_degraded_total Queries degraded toward Maybe on resident engines, by reason.\n# TYPE apt_degraded_total counter\n")
	for reason := telemetry.DegradeReason(0); reason < telemetry.NumDegradeReasons; reason++ {
		fmt.Fprintf(bw, "apt_degraded_total{reason=%q} %d\n", reason.String(), byReason[reason])
	}

	type setMetric struct {
		name, help string
		value      func(EngineStatz) int64
	}
	for _, m := range []setMetric{
		{"apt_engine_set_uses_total", "Requests served by the axiom set's engine.", func(z EngineStatz) int64 { return z.Uses }},
		{"apt_engine_set_queries_total", "Queries answered by the axiom set's engine.", func(z EngineStatz) int64 { return z.Queries }},
		{"apt_engine_set_memo_hits_total", "Proof-memo hits on the axiom set's engine.", func(z EngineStatz) int64 { return z.MemoHits }},
		{"apt_engine_set_dfa_hits_total", "Shared-DFA-cache hits on the axiom set's engine.", func(z EngineStatz) int64 { return int64(z.DFAHits) }},
	} {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", m.name, m.help, m.name)
		for i, v := range views {
			fmt.Fprintf(bw, "%s{axiom_set=\"%s\"} %d\n", m.name, telemetry.PromEscapeLabel(v.Name), m.value(statz[i]))
		}
	}
	bw.Flush() //nolint:errcheck // client hangup
}
