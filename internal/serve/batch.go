package serve

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
)

// BatchRequest is the JSON body of POST /v1/batch: a mini-C program, the
// function to analyze, and query lines in the aptdep -batch format
// ("between S T", "cross S T", or "loop U").
type BatchRequest struct {
	// Program is the mini-C source text (with its struct axiom blocks).
	Program string `json:"program"`
	// Fn names the function to analyze; may be empty when the program has
	// exactly one function.
	Fn string `json:"fn,omitempty"`
	// Queries are aptdep -batch lines; '#' comments and blank lines are
	// accepted and skipped.
	Queries []string `json:"queries"`
	// TimeoutMS, when positive, bounds each query's proof search in
	// milliseconds (capped by the server's MaxDeadline).  Zero selects the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineMS, when positive, bounds the whole request in milliseconds
	// (capped by the server's MaxDeadline).  Zero selects the server cap.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Verify re-checks every prover-backed No with the independent proof
	// checker.
	Verify bool `json:"verify,omitempty"`
	// AssumeInvariants enables §5's "full" analysis (loops are assumed to
	// re-establish axioms despite structural modifications).
	AssumeInvariants bool `json:"assume_invariants,omitempty"`
}

// QueryResult is one expanded dependence query's verdict.
type QueryResult struct {
	// Line indexes the request's Queries slice this result expands.
	Line int `json:"line"`
	// Query echoes the originating query line.
	Query string `json:"query"`
	// S and T render the two accesses.
	S string `json:"s"`
	T string `json:"t"`
	// Result is "no" / "maybe" / "yes"; Kind the dependence kind.
	Result string `json:"result"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
}

// BatchStats reports the request's cost and the warm-cache state it ran
// against.
type BatchStats struct {
	Queries   int   `json:"queries"`
	ElapsedUS int64 `json:"elapsed_us"`
	// ServiceUS is the server-side service time for the whole request —
	// parse, analysis, engine acquisition (including a cold build), and the
	// batch run — excluding admission queueing.  Cold-vs-warm comparisons
	// should use this rather than client-observed latency, which folds in
	// queue wait and connection effects.
	ServiceUS int64 `json:"service_us"`
	// ColdEngine reports whether this request built the engine (first
	// sighting of its axiom set since startup or since LRU reclamation).
	ColdEngine bool   `json:"cold_engine"`
	AxiomSet   string `json:"axiom_set"`
	// Engine-cumulative counters (across all requests sharing the axiom
	// set), for observing warm-up without scraping /statz.
	MemoHits    int64 `json:"memo_hits"`
	MemoLookups int64 `json:"memo_lookups"`
	DFAHits     int64 `json:"dfa_hits"`
	DFALookups  int64 `json:"dfa_lookups"`
	Timeouts    int64 `json:"timeouts"`
	// TraceID identifies this request's trace (the same id the traceparent
	// response header carries).
	TraceID string `json:"trace_id,omitempty"`
	// DegradedQueries counts this request's queries degraded toward Maybe
	// (all three reasons); DeadlineExpired the subset degraded because the
	// request deadline passed.
	DegradedQueries int64 `json:"degraded_queries,omitempty"`
	DeadlineExpired int64 `json:"deadline_expired,omitempty"`
}

// BatchResponse is the JSON body answering POST /v1/batch.
type BatchResponse struct {
	Results []QueryResult `json:"results"`
	// Dependent reports whether any query answered other than No (the
	// aptdep exit-status convention).
	Dependent bool       `json:"dependent"`
	Stats     BatchStats `json:"stats"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

// expandQueryLines expands aptdep -batch lines against an analysis result,
// remembering which line each core.Query came from.  Blank lines and '#'
// comments are skipped (their indices simply never appear).
func expandQueryLines(lines []string, res *analysis.Result) ([]core.Query, []int, error) {
	var (
		queries []core.Query
		origins []int
	)
	for n, line := range lines {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var (
			qs  []core.Query
			err error
		)
		switch {
		case fields[0] == "between" && len(fields) == 3:
			qs, err = res.QueriesBetween(fields[1], fields[2])
		case fields[0] == "cross" && len(fields) == 3:
			qs, err = res.LoopCarriedBetween(fields[1], fields[2])
		case fields[0] == "loop" && len(fields) == 2:
			qs, err = res.LoopCarriedQueries(fields[1])
		default:
			return nil, nil, fmt.Errorf("queries[%d]: want 'between S T', 'cross S T', or 'loop U', got %q",
				n, strings.TrimSpace(line))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("queries[%d]: %w", n, err)
		}
		queries = append(queries, qs...)
		for range qs {
			origins = append(origins, n)
		}
	}
	return queries, origins, nil
}
