package serve

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/wire"
)

// The request/response vocabulary moved to internal/wire when the query
// plane was split into tiers — clients and the cluster router speak it
// without importing the execution stack.  These aliases keep the serve API
// (and every existing caller) source-compatible.
type (
	// BatchRequest is the JSON body of POST /v1/batch.
	BatchRequest = wire.BatchRequest
	// RawQuery is one fully specified dependence question (raw mode).
	RawQuery = wire.RawQuery
	// QueryResult is one expanded dependence query's verdict.
	QueryResult = wire.QueryResult
	// BatchStats reports the request's cost and warm-cache state.
	BatchStats = wire.BatchStats
	// BatchResponse is the JSON body answering POST /v1/batch.
	BatchResponse = wire.BatchResponse

	errorResponse = wire.ErrorResponse
)

// expandQueryLines expands aptdep -batch lines against an analysis result,
// remembering which line each core.Query came from.  Blank lines and '#'
// comments are skipped (their indices simply never appear).
func expandQueryLines(lines []string, res *analysis.Result) ([]core.Query, []int, error) {
	var (
		queries []core.Query
		origins []int
	)
	for n, line := range lines {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		var (
			qs  []core.Query
			err error
		)
		switch {
		case fields[0] == "between" && len(fields) == 3:
			qs, err = res.QueriesBetween(fields[1], fields[2])
		case fields[0] == "cross" && len(fields) == 3:
			qs, err = res.LoopCarriedBetween(fields[1], fields[2])
		case fields[0] == "loop" && len(fields) == 2:
			qs, err = res.LoopCarriedQueries(fields[1])
		default:
			return nil, nil, fmt.Errorf("queries[%d]: want 'between S T', 'cross S T', or 'loop U', got %q",
				n, strings.TrimSpace(line))
		}
		if err != nil {
			return nil, nil, fmt.Errorf("queries[%d]: %w", n, err)
		}
		queries = append(queries, qs...)
		for range qs {
			origins = append(origins, n)
		}
	}
	return queries, origins, nil
}
