package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

func access(path, field string, write bool) core.Access {
	return core.Access{Handle: "h", Path: pathexpr.MustParse(path), Field: field, IsWrite: write}
}

// disjointQuery is provably independent (A1), aliasQuery provably
// dependent; interleaving them makes result ordering observable.
func disjointQuery() core.Query {
	return core.Query{S: access("L", "val", true), T: access("R", "val", false)}
}

func aliasQuery() core.Query {
	return core.Query{S: access("L.R", "val", true), T: access("L.R", "val", false)}
}

func TestBatchOrderingMatchesQueries(t *testing.T) {
	var queries []core.Query
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			queries = append(queries, disjointQuery())
		} else {
			queries = append(queries, aliasQuery())
		}
	}
	eng := New(WorkloadWindows()[0], Options{Workers: 8})
	results := eng.Batch(context.Background(), queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, out := range results {
		want := core.Yes
		if i%2 == 0 {
			want = core.No
		}
		if out.Result != want {
			t.Errorf("results[%d] = %v, want %v: ordering broken", i, out.Result, want)
		}
	}
}

func TestBatchCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []core.Query{disjointQuery(), aliasQuery(), disjointQuery()}
	eng := New(WorkloadWindows()[0], Options{Workers: 4})
	results := eng.Batch(ctx, queries)
	for i, out := range results {
		if out.Result != core.Maybe {
			t.Errorf("results[%d] = %v, want Maybe (canceled queries must degrade conservatively)", i, out.Result)
		}
		if !strings.Contains(out.Reason, "batch canceled") {
			t.Errorf("results[%d] reason = %q, want a cancellation reason", i, out.Reason)
		}
		if want := core.Classify(queries[i].S, queries[i].T); out.Kind != want {
			t.Errorf("results[%d] kind = %v, want %v (kind is structural, computable without searching)", i, out.Kind, want)
		}
	}
	if got := eng.Stats().Canceled; got != int64(len(queries)) {
		t.Errorf("Stats().Canceled = %d, want %d", got, len(queries))
	}
}

// The heavy query's proof search fails after well over 64 prove calls
// (the interrupt poll stride), so an expired deadline is guaranteed to be
// observed mid-search.
func heavyQuery() core.Query {
	return core.Query{
		S: access("(L|R).(L|R).(L|R).N*", "val", true),
		T: access("(L|R).(L|R).(L|R).N+", "val", false),
	}
}

func TestQueryTimeoutDegradesToMaybe(t *testing.T) {
	eng := New(WorkloadWindows()[0], Options{Workers: 1, QueryTimeout: time.Nanosecond})
	results := eng.Batch(context.Background(), []core.Query{heavyQuery()})
	if results[0].Result != core.Maybe {
		t.Fatalf("timed-out query answered %v, want Maybe", results[0].Result)
	}
	if !strings.Contains(results[0].Reason, "query timeout") {
		t.Errorf("reason = %q, want a timeout reason", results[0].Reason)
	}
	if got := eng.Stats().Timeouts; got != 1 {
		t.Errorf("Stats().Timeouts = %d, want 1", got)
	}
}

// A timeout must never flip a decided verdict: cheap provable queries in
// the same batch still answer No even under an absurd deadline, because
// their searches finish before the poll stride observes the expiry.
func TestQueryTimeoutLeavesFastVerdictsAlone(t *testing.T) {
	eng := New(WorkloadWindows()[0], Options{Workers: 1, QueryTimeout: time.Nanosecond})
	results := eng.Batch(context.Background(), []core.Query{disjointQuery(), heavyQuery(), disjointQuery()})
	for _, i := range []int{0, 2} {
		if results[i].Result != core.No {
			t.Errorf("results[%d] = %v, want No (fast queries decide before the deadline is polled)", i, results[i].Result)
		}
	}
	if results[1].Result != core.Maybe {
		t.Errorf("results[1] = %v, want Maybe", results[1].Result)
	}
}

func TestCanonicalSwapSharesMemo(t *testing.T) {
	q := disjointQuery()
	swapped := swapQuery(q)
	eng := New(WorkloadWindows()[0], Options{Workers: 1})
	results := eng.Batch(context.Background(), []core.Query{q, swapped})
	if results[0].Result != core.No || results[1].Result != core.No {
		t.Fatalf("verdicts = %v/%v, want No/No", results[0].Result, results[1].Result)
	}
	if results[0].Kind != core.Flow || results[1].Kind != core.Anti {
		t.Errorf("kinds = %v/%v, want flow/anti (swap exchanges reader and writer)", results[0].Kind, results[1].Kind)
	}
	st := eng.Stats().Memo
	if st.Lookups != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("memo stats = %+v, want exactly one search shared by the swapped pair", st)
	}
}

func TestMemoAndDFACacheSharedAcrossBatch(t *testing.T) {
	queries := Workload(5, 0)
	eng := New(WorkloadWindows()[0], Options{Workers: 4})
	eng.Batch(context.Background(), queries)
	st := eng.Stats()
	if st.Batches != 1 || st.Queries != int64(len(queries)) {
		t.Errorf("batch counters = %d/%d, want 1/%d", st.Batches, st.Queries, len(queries))
	}
	if st.Memo.Hits == 0 {
		t.Error("memo recorded no hits on a workload built around swapped and repeated goals")
	}
	if rate := st.Memo.HitRate(); rate <= 0.5 {
		t.Errorf("memo hit rate = %.2f, want > 0.5 on the shared workload", rate)
	}
	if st.DFA.Hits == 0 {
		t.Error("shared DFA cache recorded no hits across the axiom windows")
	}
}

func TestNewClampsWorkers(t *testing.T) {
	eng := New(WorkloadWindows()[0], Options{})
	if eng.Workers() != 1 {
		t.Errorf("Workers() = %d, want 1 for the zero Options", eng.Workers())
	}
	if got := New(WorkloadWindows()[0], Options{Workers: -3}).Workers(); got != 1 {
		t.Errorf("Workers() = %d, want 1 for negative width", got)
	}
}

func TestEngineTelemetryCounters(t *testing.T) {
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	eng := New(WorkloadWindows()[0], Options{Workers: 2, Telemetry: tel})
	eng.Batch(context.Background(), []core.Query{disjointQuery(), swapQuery(disjointQuery())})
	snap := tel.Metrics().Snapshot()
	if snap.Counters["engine.batches"] != 1 {
		t.Errorf("engine.batches = %d, want 1", snap.Counters["engine.batches"])
	}
	if snap.Counters["engine.queries"] != 2 {
		t.Errorf("engine.queries = %d, want 2", snap.Counters["engine.queries"])
	}
	if snap.Counters["engine.memo_hits"]+snap.Counters["engine.memo_misses"] == 0 {
		t.Error("memo telemetry counters never moved")
	}
}

// A batch context whose deadline has already passed degrades every query
// to Maybe with a deadline reason, counted as a deadline expiry — not as a
// query timeout or a cancellation.  This is the per-request deadline path a
// serving process leans on.
func TestRequestDeadlineDegradesToMaybe(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	queries := []core.Query{disjointQuery(), heavyQuery()}
	eng := New(WorkloadWindows()[0], Options{Workers: 2})
	for i, out := range eng.BatchTimeout(ctx, queries, 0) {
		if out.Result != core.Maybe {
			t.Errorf("results[%d] = %v, want Maybe", i, out.Result)
		}
		if !strings.Contains(out.Reason, "request deadline expired") {
			t.Errorf("results[%d] reason = %q, want a deadline reason", i, out.Reason)
		}
	}
	st := eng.Stats()
	if st.DeadlineExpired != int64(len(queries)) || st.Timeouts != 0 || st.Canceled != 0 {
		t.Errorf("stats = %d deadline / %d timeouts / %d canceled, want %d / 0 / 0",
			st.DeadlineExpired, st.Timeouts, st.Canceled, len(queries))
	}
}
