package engine

import (
	"fmt"
	"math/rand"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
)

// The benchmark/differential workload mimics what the engine's clients
// produce: many closely related queries over a leaf-linked binary tree,
// re-asked under several §3.4 validity windows, with each goal also
// appearing with its sides swapped (a loop pass asks both ⟨a,b⟩ and
// ⟨b,a⟩).  The windows below drop one non-structural axiom each but all
// preserve the field set {L,R,N}, so their DFA alphabets — and hence the
// shared compilation cache entries — coincide.

// workloadSpec is one base access pair of the generated workload.
type workloadSpec struct {
	x, y     string // access paths (pathexpr syntax)
	fs, ft   string // accessed data fields
	ws, wt   bool   // write flags
	relation core.HandleRelation
	distinct bool // anchor T at a second handle
}

var workloadSpecs = []workloadSpec{
	// Provably disjoint same-handle pairs (A1/A2/A4 territory).
	{x: "L", y: "R", fs: "val", ft: "val", ws: true, wt: false},
	{x: "L.L", y: "L.R", fs: "val", ft: "val", ws: true, wt: true},
	{x: "R.L", y: "R.R", fs: "val", ft: "val", ws: false, wt: true},
	{x: "L", y: "R.N", fs: "val", ft: "val", ws: true, wt: false},
	{x: "N", y: "N.N", fs: "val", ft: "val", ws: true, wt: true},
	{x: "ε", y: "(L|R)+", fs: "val", ft: "val", ws: true, wt: false},
	{x: "ε", y: "N+", fs: "val", ft: "val", ws: true, wt: true},
	{x: "L+", y: "R", fs: "val", ft: "val", ws: true, wt: false},
	{x: "L.L+", y: "L.R", fs: "val", ft: "val", ws: true, wt: true},
	// Genuinely colliding or unprovable pairs (Yes / Maybe).
	{x: "L.R.L", y: "L.R.L", fs: "val", ft: "val", ws: true, wt: false},
	{x: "L.N*", y: "R.N*", fs: "val", ft: "val", ws: true, wt: true},
	{x: "(L|R)*", y: "N+", fs: "val", ft: "val", ws: false, wt: true},
	// Distinct-handle pairs (A2/A3 territory).
	{x: "N", y: "N", fs: "val", ft: "val", ws: true, wt: true, relation: core.DistinctHandles, distinct: true},
	{x: "L", y: "R", fs: "val", ft: "val", ws: true, wt: false, relation: core.DistinctHandles, distinct: true},
	{x: "L.N", y: "R.N", fs: "val", ft: "val", ws: false, wt: true, relation: core.DistinctHandles, distinct: true},
	// Unknown-handle pairs (both cases must be proved).
	{x: "L", y: "R", fs: "val", ft: "val", ws: true, wt: true, relation: core.UnknownHandles, distinct: true},
	{x: "N", y: "N.N", fs: "val", ft: "val", ws: true, wt: false, relation: core.UnknownHandles, distinct: true},
	// Structural short-circuits (never reach the prover).
	{x: "L", y: "N", fs: "val", ft: "tag", ws: true, wt: true},
	{x: "L.R", y: "R.L", fs: "val", ft: "val", ws: false, wt: false},
}

// WorkloadWindows returns the §3.4 validity windows the workload spans: the
// full leaf-linked binary tree axiom set plus three windows each missing
// one of A1–A3.  Every window preserves the field set {L,R,N}, so all four
// compile DFAs over one alphabet.
func WorkloadWindows() []*axiom.Set {
	full := axiom.LeafLinkedBinaryTree()
	windows := []*axiom.Set{full}
	for drop := 0; drop < 3; drop++ {
		w := axiom.NewSet(fmt.Sprintf("%s-w%d", full.StructName, drop+1))
		for i, a := range full.Axioms {
			if i != drop {
				w.Add(a)
			}
		}
		windows = append(windows, w)
	}
	return windows
}

// Workload generates the deterministic pseudo-random query workload for
// the engine's differential tests and benchmarks: every base access pair ×
// every validity window, issued once in its original orientation and twice
// swapped (S and T exchanged, as symmetric loop passes do), then shuffled
// by the seed.  If n is positive the workload is truncated to n queries.
func Workload(seed int64, n int) []core.Query {
	windows := WorkloadWindows()
	var queries []core.Query
	for _, w := range windows {
		for _, spec := range workloadSpecs {
			q := spec.query(w)
			queries = append(queries, q, swapQuery(q), swapQuery(q))
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(queries), func(i, j int) {
		queries[i], queries[j] = queries[j], queries[i]
	})
	if n > 0 && n < len(queries) {
		queries = queries[:n]
	}
	return queries
}

func (s workloadSpec) query(w *axiom.Set) core.Query {
	ht := "h"
	if s.distinct {
		ht = "k"
	}
	return core.Query{
		Axioms:   w,
		S:        core.Access{Handle: "h", Path: pathexpr.MustParse(s.x), Field: s.fs, IsWrite: s.ws},
		T:        core.Access{Handle: ht, Path: pathexpr.MustParse(s.y), Field: s.ft, IsWrite: s.wt},
		Relation: s.relation,
	}
}

// swapQuery exchanges the two accesses, the orientation a symmetric client
// (judging both ⟨a,b⟩ and ⟨b,a⟩) produces.  The dependence kind flips
// between Flow and Anti but the disjointness goals are the same theorems,
// which is exactly what CanonicalGoal deduplicates.
func swapQuery(q core.Query) core.Query {
	q.S, q.T = q.T, q.S
	return q
}
