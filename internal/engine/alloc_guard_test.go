//go:build !race

package engine

import (
	"testing"

	"repro/internal/automata"
	"repro/internal/prover"
)

// TestWarmHitAllocationBudget is the allocation-regression guard for the
// interned-key caches: once every layer is warm, a cache hit must not
// allocate.  Gated out under the race detector, whose instrumentation adds
// allocations of its own (`make race` runs the whole tree with -race).
func TestWarmHitAllocationBudget(t *testing.T) {
	x, y, a := benchInternExprs()

	c := automata.NewSharedCache(0, 0, 0)
	if _, err := c.Disjoint(x, y, a); err != nil {
		t.Fatal(err)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := c.DFA(x, a); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("warm SharedCache.DFA hit allocates %.1f per call, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		if _, err := c.Disjoint(x, y, a); err != nil {
			t.Fatal(err)
		}
	}); got > 0 {
		t.Errorf("warm SharedCache ops-memo hit allocates %.1f per call, want 0", got)
	}

	m := NewMemo(0, 0, nil)
	proved := func() *prover.Proof { return &prover.Proof{Result: prover.Proved} }
	m.Prove(1, prover.SameSrc, x, y, proved)
	if got := testing.AllocsPerRun(200, func() {
		m.Prove(1, prover.SameSrc, x, y, proved)
	}); got > 0 {
		t.Errorf("warm proof-memo hit allocates %.1f per call, want 0", got)
	}

	if got := testing.AllocsPerRun(200, func() {
		CanonicalGoalKey(prover.SameSrc, x, y)
	}); got > 0 {
		t.Errorf("warm CanonicalGoalKey allocates %.1f per call, want 0", got)
	}
}
