package engine

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// TestSnapshotArtifactGoalRoundTrip is the proof-memo persistence
// differential: a cold engine answers the seeded workload, its full
// snapshot (DFAs, decisions, goal verdicts, axiom set) is saved and loaded
// back, and a preloaded engine must answer byte-identically — with proof
// verification on, so a restored Proved verdict whose derivation tree did
// not survive the round trip would fail CheckProof, degrade to Maybe, and
// break the differential.
func TestSnapshotArtifactGoalRoundTrip(t *testing.T) {
	queries := Workload(7, 0)
	cold := New(WorkloadWindows()[0], Options{Workers: 4, VerifyProofs: true})
	want := cold.Batch(context.Background(), queries)

	art := cold.SnapshotArtifact()
	if len(art.Goals) == 0 {
		t.Fatal("snapshot holds no goal verdicts; the round trip would be vacuous")
	}
	proved := 0
	for _, g := range art.Goals {
		if g.Result == 0 {
			proved++
			if len(g.Steps) == 0 {
				t.Errorf("proved goal %q has no derivation steps", g.Theorem)
			}
		} else if len(g.Steps) != 0 {
			t.Errorf("not-proved goal %q carries %d derivation steps", g.Theorem, len(g.Steps))
		}
	}
	if proved == 0 {
		t.Fatal("snapshot holds no proved goals; nothing would exercise tree reconstruction")
	}
	if len(art.AxiomSets) == 0 {
		t.Fatal("snapshot did not record the engine's axiom set")
	}

	path := filepath.Join(t.TempDir(), "goals.aptc")
	if err := art.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := automata.LoadArtifact(path)
	if err != nil {
		t.Fatalf("LoadArtifact: %v", err)
	}
	defer back.Close()

	warm := New(WorkloadWindows()[0], Options{Workers: 4, VerifyProofs: true, Preload: back})
	got := warm.Batch(context.Background(), queries)
	for i := range got {
		if got[i].Result != want[i].Result || got[i].Kind != want[i].Kind || got[i].Reason != want[i].Reason {
			t.Errorf("query %d (%s): preloaded engine says %v/%v/%q, cold engine says %v/%v/%q",
				i, describe(queries[i]),
				got[i].Result, got[i].Kind, got[i].Reason,
				want[i].Result, want[i].Kind, want[i].Reason)
		}
	}
	if st := warm.Stats(); st.Memo.Hits == 0 {
		t.Error("preloaded engine had no memo hits; the goal verdicts were not consulted")
	}
}

// TestArtifactAxiomSetRoundTrip checks that a persisted axiom set
// reconstructs with full fidelity: struct name, axiom names, declaration
// order, and — critically for the serving pool — the same process-local
// identity, since a boot-prewarmed engine is only reachable if the request's
// own axiom set resolves to the same pool key.
func TestArtifactAxiomSetRoundTrip(t *testing.T) {
	orig := axiom.LeafLinkedBinaryTree()
	art := &automata.Artifact{}
	AppendAxiomSet(art, orig)

	path := filepath.Join(t.TempDir(), "set.aptc")
	if err := art.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := automata.ReadArtifact(path)
	if err != nil {
		t.Fatalf("ReadArtifact: %v", err)
	}
	sets := ArtifactAxiomSets(back)
	if len(sets) != 1 {
		t.Fatalf("reconstructed %d axiom sets, want 1", len(sets))
	}
	got := sets[0]
	if got.StructName != orig.StructName {
		t.Errorf("struct name %q, want %q", got.StructName, orig.StructName)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("reconstructed %d axioms, want %d", got.Len(), orig.Len())
	}
	for i, a := range got.Axioms {
		o := orig.Axioms[i]
		if a.Name != o.Name || a.Form != o.Form ||
			pathexpr.InternID(a.RE1) != pathexpr.InternID(o.RE1) ||
			pathexpr.InternID(a.RE2) != pathexpr.InternID(o.RE2) {
			t.Errorf("axiom %d: reconstructed %v, want %v", i, a, o)
		}
	}
	if got.ID() != orig.ID() {
		t.Errorf("reconstructed set ID %#x differs from original %#x; pool prewarm would never match",
			got.ID(), orig.ID())
	}
}

// TestMemoPreseedFingerprintScoping checks the soundness boundary of goal
// persistence: a preseeded verdict is reachable under the identity of the
// axiom set it was proved under and under no other.
func TestMemoPreseedFingerprintScoping(t *testing.T) {
	setA := axiom.LeafLinkedBinaryTree()
	setB := axiom.SinglyLinkedList("next")
	x, y := setA.Axioms[0].RE1, setA.Axioms[0].RE2

	art := &automata.Artifact{}
	AppendAxiomSet(art, setA)
	xi, yi := len(art.Exprs), len(art.Exprs)+1
	art.Exprs = append(art.Exprs, pathexpr.Intern(x).String(), pathexpr.Intern(y).String())
	art.Sigs = append(art.Sigs, setA.Key())
	art.Goals = append(art.Goals, automata.ArtifactGoal{
		Sig: 0, Form: uint8(prover.SameSrc), Result: 1, X: xi, Y: yi,
		Theorem: "scoping probe",
	})

	m := NewMemo(0, 0, nil)
	if n := m.Preseed(art); n != 1 {
		t.Fatalf("Preseed inserted %d goals, want 1", n)
	}
	ran := false
	compute := func() *prover.Proof {
		ran = true
		return &prover.Proof{Result: prover.NotProved}
	}
	if p := m.Prove(setA.ID(), prover.SameSrc, x, y, compute); ran || p.Theorem != "scoping probe" {
		t.Errorf("lookup under the recorded set searched (ran=%v, theorem=%q); want the preseeded verdict", ran, p.Theorem)
	}
	ran = false
	m.Prove(setB.ID(), prover.SameSrc, x, y, compute)
	if !ran {
		t.Error("lookup under a different axiom set was served from a verdict scoped to another fingerprint")
	}
}

// TestMemoPreseedSkipsMalformedGoals feeds Preseed entries that violate the
// Proved ⇔ has-derivation invariant or reference unparseable expressions;
// each must be skipped, never inserted.
func TestMemoPreseedSkipsMalformedGoals(t *testing.T) {
	set := axiom.SinglyLinkedList("next")
	art := &automata.Artifact{}
	art.Exprs = append(art.Exprs, "next", "next.next", "not a ( valid expr")
	art.Sigs = append(art.Sigs, set.Key())
	art.Goals = []automata.ArtifactGoal{
		// Proved but no derivation tree.
		{Sig: 0, Form: uint8(prover.SameSrc), Result: 0, X: 0, Y: 1},
		// Operand that fails to re-parse.
		{Sig: 0, Form: uint8(prover.SameSrc), Result: 1, X: 0, Y: 2},
		// NotProved carrying a tree (reconstruction yields a root; invariant
		// check must reject it).
		{Sig: 0, Form: uint8(prover.SameSrc), Result: 1, X: 0, Y: 1,
			Steps: []automata.ArtifactStep{{X: 0, Y: 1}}},
	}
	m := NewMemo(0, 0, nil)
	if n := m.Preseed(art); n != 0 {
		t.Errorf("Preseed inserted %d malformed goals, want 0", n)
	}
	if st := m.Stats(); st.Entries != 0 {
		t.Errorf("memo holds %d entries after malformed preseed, want 0", st.Entries)
	}
}
