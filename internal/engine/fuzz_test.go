package engine

import (
	"strings"
	"testing"

	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// FuzzCanonicalGoal checks the memo key's two contracts on arbitrary
// expression pairs:
//
//   - equivalence: goals the prover treats as one theorem — the same pair
//     with its sides swapped, under either quantifier form — share a key;
//   - separation: two keys are equal only when the normalized side
//     multisets and the form agree, so inequivalent goals never collide
//     (the separator byte cannot occur inside a rendered expression).
func FuzzCanonicalGoal(f *testing.F) {
	seeds := [][4]string{
		{"L", "R", "L", "R"},
		{"L.R", "R.L", "R.L", "L.R"},
		{"(L|R)+", "N*", "N*", "(L|R)+"},
		{"L.(L|R)*", "R.(L|R)*", "L", "R"},
		{"ε", "N+", "N", "N.N"},
		{"L", "L", "R", "R"},
		{"(L|R|N)+", "ε", "(N|R|L)+", "ε"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], true)
	}
	f.Fuzz(func(t *testing.T, a, b, c, d string, sameSrc bool) {
		parse := func(s string) (pathexpr.Expr, bool) {
			if len(s) > 64 {
				return nil, false
			}
			e, err := pathexpr.Parse(s)
			if err != nil {
				return nil, false
			}
			return e, true
		}
		x, ok := parse(a)
		if !ok {
			t.Skip()
		}
		y, ok := parse(b)
		if !ok {
			t.Skip()
		}
		form := prover.SameSrc
		if !sameSrc {
			form = prover.DiffSrc
		}
		key := CanonicalGoal(form, x, y)

		// Swap invariance: ⟨x,y⟩ and ⟨y,x⟩ are one theorem.
		if swapped := CanonicalGoal(form, y, x); swapped != key {
			t.Errorf("key differs under swap: %q vs %q", key, swapped)
		}
		// Form separation: the same sides under the other quantifier are a
		// different theorem.
		other := prover.DiffSrc
		if form == prover.DiffSrc {
			other = prover.SameSrc
		}
		if CanonicalGoal(other, x, y) == key {
			t.Errorf("key %q does not separate SameSrc from DiffSrc", key)
		}
		// Round trip: the key decodes to exactly the two normalized sides,
		// so equal keys imply equal normalized goals (no collisions).
		parts := strings.Split(key, canonSep)
		if len(parts) != 3 {
			t.Fatalf("key %q has %d parts, want 3 (an expression rendered the separator byte)", key, len(parts))
		}
		sx, sy := pathexpr.Simplify(x).String(), pathexpr.Simplify(y).String()
		if sy < sx {
			sx, sy = sy, sx
		}
		if parts[1] != sx || parts[2] != sy {
			t.Errorf("key %q decoded to (%q,%q), want (%q,%q)", key, parts[1], parts[2], sx, sy)
		}

		// Cross-pair separation: when a second parseable pair yields the
		// same key, its normalized sides must be the same two expressions.
		u, ok := parse(c)
		if !ok {
			return
		}
		v, ok := parse(d)
		if !ok {
			return
		}
		if CanonicalGoal(form, u, v) == key {
			su, sv := pathexpr.Simplify(u).String(), pathexpr.Simplify(v).String()
			if sv < su {
				su, sv = sv, su
			}
			if su != sx || sv != sy {
				t.Errorf("collision: (%q,%q) and (%q,%q) share key %q", a, b, c, d, key)
			}
		}
	})
}

// TestCanonicalSwapIsProverSound pins the semantic claim behind the
// canonicalization: for every prover-reaching pair in the workload and both
// quantifier forms, the prover's verdict on ⟨x,y⟩ equals its verdict on
// ⟨y,x⟩ — disjointness is symmetric for a common anchor, and for distinct
// anchors renaming the bound handles h↔k swaps the sides.
func TestCanonicalSwapIsProverSound(t *testing.T) {
	for _, w := range WorkloadWindows() {
		for _, spec := range workloadSpecs {
			x := pathexpr.MustParse(spec.x)
			y := pathexpr.MustParse(spec.y)
			for _, form := range []prover.Form{prover.SameSrc, prover.DiffSrc} {
				fwd := prover.New(w, prover.Options{}).Prove(form, x, y)
				rev := prover.New(w, prover.Options{}).Prove(form, y, x)
				if fwd.Result != rev.Result {
					t.Errorf("window %s, form %v, %s vs %s: verdict %v forward but %v reversed",
						w.StructName, form, spec.x, spec.y, fwd.Result, rev.Result)
				}
			}
		}
	}
}
