// Package engine is the concurrency-safe batched dependence-query engine:
// it answers many core.Query instances over one axiom set by fanning them
// across parallel.Pool workers, each owning a sequential core.Tester whose
// expensive layers — the DFA compilation cache and the theorem-prover
// verdicts — are shared across the whole batch through a sharded
// automata.SharedCache and a canonicalized cross-query proof memo.
//
// The clients this serves (the parallelization-legality lint pass, aptdep
// -batch sweeps, sparsebench's legality certification) issue hundreds of
// closely related queries: the same goal re-asked under several §3.4 axiom
// windows, and symmetric pairs — a loop pass asks both ⟨a,b⟩ and ⟨b,a⟩.
// Canonicalizing goals (CanonicalGoalKey) and sharing compiled DFAs across
// windows converts that redundancy into cache hits while keeping verdicts
// identical to the sequential tester's (enforced by the differential
// harness in differential_test.go).
package engine

import (
	"strings"

	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// canonSep separates the fields of a canonical goal key.  It can never
// occur inside a rendered path expression: field names are identifiers and
// the renderer's metacharacters are printable.
const canonSep = "\x1f"

// GoalKey is the canonical identity of a disjointness goal ⟨form, x, y⟩:
// the proof form plus the interned IDs of the two normalized operands,
// commuted into a fixed order.  Two goals share a key exactly when the
// prover treats them as the same theorem:
//
//   - simplification: x and y are normalized with pathexpr.Simplify (via the
//     interner's cached Simplified form), the same normalization
//     prover.Prove applies before searching;
//   - symmetric swap: disjointness is symmetric, so ∀h, h.X <> h.Y and
//     ∀h, h.Y <> h.X are one theorem — and for distinct anchors, renaming
//     the bound handles h↔k turns ∀h<>k, h.X <> k.Y into ∀h<>k, h.Y <> k.X.
//
// Because interned IDs are in bijection with canonical renderings, ordering
// the pair by ID yields the same equality classes as the string-ordered
// CanonicalGoal rendering — but building a GoalKey on a warm interner is
// allocation-free: two atomic loads and an integer compare, no Simplify
// walk, no string rendering.
type GoalKey struct {
	Form prover.Form
	A, B uint64
}

// CanonicalGoalKey returns the canonical identity of the goal ⟨form, x, y⟩.
func CanonicalGoalKey(form prover.Form, x, y pathexpr.Expr) GoalKey {
	a := pathexpr.Intern(x).Simplified().ID()
	b := pathexpr.Intern(y).Simplified().ID()
	if b < a {
		a, b = b, a
	}
	return GoalKey{Form: form, A: a, B: b}
}

// CanonicalGoal returns the canonical memo key of the goal ⟨form, x, y⟩ as
// a string: the two normalized renderings in lexicographic order around a
// separator that cannot occur inside them, so distinct normalized goals can
// never collide (see FuzzCanonicalGoal).  The hot paths key on GoalKey;
// this rendering survives for diagnostics and snapshot ordering.
func CanonicalGoal(form prover.Form, x, y pathexpr.Expr) string {
	a := pathexpr.Intern(x).Simplified().String()
	b := pathexpr.Intern(y).Simplified().String()
	if b < a {
		a, b = b, a
	}
	var sb strings.Builder
	sb.Grow(2 + len(a) + len(b) + 2*len(canonSep))
	if form == prover.DiffSrc {
		sb.WriteByte('D')
	} else {
		sb.WriteByte('S')
	}
	sb.WriteString(canonSep)
	sb.WriteString(a)
	sb.WriteString(canonSep)
	sb.WriteString(b)
	return sb.String()
}
