// Package engine is the concurrency-safe batched dependence-query engine:
// it answers many core.Query instances over one axiom set by fanning them
// across parallel.Pool workers, each owning a sequential core.Tester whose
// expensive layers — the DFA compilation cache and the theorem-prover
// verdicts — are shared across the whole batch through a sharded
// automata.SharedCache and a canonicalized cross-query proof memo.
//
// The clients this serves (the parallelization-legality lint pass, aptdep
// -batch sweeps, sparsebench's legality certification) issue hundreds of
// closely related queries: the same goal re-asked under several §3.4 axiom
// windows, and symmetric pairs — a loop pass asks both ⟨a,b⟩ and ⟨b,a⟩.
// Canonicalizing goals (CanonicalGoal) and sharing compiled DFAs across
// windows converts that redundancy into cache hits while keeping verdicts
// identical to the sequential tester's (enforced by the differential
// harness in differential_test.go).
package engine

import (
	"strings"

	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// canonSep separates the fields of a canonical goal key.  It can never
// occur inside a rendered path expression: field names are identifiers and
// the renderer's metacharacters are printable.
const canonSep = "\x1f"

// CanonicalGoal returns the canonical memo key of the disjointness goal
// ⟨form, x, y⟩.  Two goals share a key exactly when the prover treats them
// as the same theorem:
//
//   - simplification: x and y are normalized with pathexpr.Simplify, the
//     same normalization prover.Prove applies before searching;
//   - symmetric swap: disjointness is symmetric, so ∀h, h.X <> h.Y and
//     ∀h, h.Y <> h.X are one theorem — and for distinct anchors, renaming
//     the bound handles h↔k turns ∀h<>k, h.X <> k.Y into ∀h<>k, h.Y <> k.X.
//
// The key embeds the two normalized renderings verbatim around a separator
// that cannot occur inside them, so distinct normalized goals can never
// collide (see FuzzCanonicalGoal).
func CanonicalGoal(form prover.Form, x, y pathexpr.Expr) string {
	a := pathexpr.Simplify(x).String()
	b := pathexpr.Simplify(y).String()
	if b < a {
		a, b = b, a
	}
	var sb strings.Builder
	sb.Grow(2 + len(a) + len(b) + 2*len(canonSep))
	if form == prover.DiffSrc {
		sb.WriteByte('D')
	} else {
		sb.WriteByte('S')
	}
	sb.WriteString(canonSep)
	sb.WriteString(a)
	sb.WriteString(canonSep)
	sb.WriteString(b)
	return sb.String()
}
