package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// TestMemoWaiterDoesNotInheritExhausted is the regression test for the
// poisoning bug: a waiter blocked on an in-flight computation used to take
// whatever proof the computing worker published — including an Exhausted
// budget artifact from a worker with a shorter deadline.  The no-poisoning
// contract says budget artifacts are private; the waiter must run its own
// search.
func TestMemoWaiterDoesNotInheritExhausted(t *testing.T) {
	m := NewMemo(1, 0, nil)
	x, y := pathexpr.MustParse("L"), pathexpr.MustParse("R")

	workerIn := make(chan struct{})  // closed once the worker owns the entry
	release := make(chan struct{})   // closed to let the worker finish
	waiterRan := make(chan struct{}) // closed when the waiter's own compute runs

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := m.Prove(1, prover.SameSrc, x, y, func() *prover.Proof {
			close(workerIn)
			<-release
			return &prover.Proof{Result: prover.Exhausted}
		})
		if p.Result != prover.Exhausted {
			t.Errorf("worker got %v, want its own Exhausted artifact back", p.Result)
		}
	}()

	<-workerIn
	var waiterProof *prover.Proof
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterProof = m.Prove(1, prover.SameSrc, x, y, func() *prover.Proof {
			close(waiterRan)
			return &prover.Proof{Result: prover.Proved}
		})
	}()

	// Whether the waiter has reached the entry yet or not, releasing the
	// worker must leave it a path to a real verdict.
	close(release)
	wg.Wait()
	select {
	case <-waiterRan:
	default:
		t.Fatal("waiter never ran a private search after the worker exhausted")
	}
	if waiterProof == nil || waiterProof.Result != prover.Proved {
		t.Fatalf("waiter proof = %+v, want its own Proved result", waiterProof)
	}
	if st := m.Stats(); st.Hits != 0 {
		t.Errorf("Stats().Hits = %d, want 0 (an inherited artifact must not count as a hit)", st.Hits)
	}
}

// TestMemoExhaustedNotRetainedAcrossTesters drives the same scenario
// through real provers: a tester whose proof budget exhausts immediately
// (the short-deadline worker) fails a goal, and a second tester sharing
// the memo (the long-deadline caller) must still reach the real verdict.
func TestMemoExhaustedNotRetainedAcrossTesters(t *testing.T) {
	axioms := WorkloadWindows()[0]
	memo := NewMemo(0, 0, nil)

	// Provably independent, but only after a search deeper than the
	// impatient tester's two-step budget.
	q := core.Query{S: access("L.R", "val", true), T: access("L.L+", "val", true)}

	impatient := core.NewTester(axioms, prover.Options{MaxSteps: 2}).SetProofMemo(memo)
	if out := impatient.DepTest(q); out.Result != core.Maybe {
		t.Fatalf("budget-bound tester answered %v, want Maybe", out.Result)
	}
	if st := memo.Stats(); st.Entries != 0 {
		t.Fatalf("memo retained %d entries after an exhausted-only search", st.Entries)
	}

	patient := core.NewTester(axioms, prover.Options{}).SetProofMemo(memo)
	if out := patient.DepTest(q); out.Result != core.No {
		t.Fatalf("tester after exhaustion answered %v, want No (goal must not be poisoned)", out.Result)
	}
}

// TestMemoShardCapBoundsEntries: the per-shard cap drops completed entries
// (counting them as evictions) but never in-flight ones, so a long-lived
// process stays bounded without breaking single-flight.
func TestMemoShardCapBoundsEntries(t *testing.T) {
	const cap = 4
	m := NewMemo(1, cap, nil)
	proved := func() *prover.Proof { return &prover.Proof{Result: prover.Proved} }

	// Pin one goal in flight across the whole flood.
	pinnedIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Prove(1, prover.SameSrc, pathexpr.MustParse("N"), pathexpr.MustParse("N*"), func() *prover.Proof {
			close(pinnedIn)
			<-release
			return &prover.Proof{Result: prover.Proved}
		})
	}()
	<-pinnedIn

	for i := 0; i < 10*cap; i++ {
		x := pathexpr.MustParse(fmt.Sprintf("L.R%s", strings.Repeat(".N", i)))
		m.Prove(1, prover.SameSrc, x, pathexpr.MustParse("R"), proved)
	}
	st := m.Stats()
	if st.Entries > cap+1 { // the flood's survivors plus the pinned in-flight entry
		t.Errorf("Entries = %d after flooding a %d-cap shard, want bounded", st.Entries, cap)
	}
	if st.Evictions == 0 {
		t.Error("Evictions = 0 after flooding past the cap")
	}

	// The pinned entry survived every epoch: a second caller must join it as
	// a waiter, not start a duplicate search.
	hitsBefore := st.Hits
	done := make(chan *prover.Proof, 1)
	go func() {
		done <- m.Prove(1, prover.SameSrc, pathexpr.MustParse("N"), pathexpr.MustParse("N*"), func() *prover.Proof {
			t.Error("duplicate search started for an in-flight goal: the cap evicted a live entry")
			return &prover.Proof{Result: prover.Proved}
		})
	}()
	close(release)
	wg.Wait()
	if p := <-done; p.Result != prover.Proved {
		t.Errorf("waiter on pinned goal got %v, want Proved", p.Result)
	}
	if st := m.Stats(); st.Hits != hitsBefore+1 {
		t.Errorf("Hits = %d, want %d (the waiter shares the pinned search)", st.Hits, hitsBefore+1)
	}

	// An uncapped memo never evicts.
	u := NewMemo(1, 0, nil)
	for i := 0; i < 10*cap; i++ {
		x := pathexpr.MustParse(fmt.Sprintf("L%s", strings.Repeat(".N", i)))
		u.Prove(1, prover.SameSrc, x, pathexpr.MustParse("R"), proved)
	}
	if st := u.Stats(); st.Evictions != 0 || st.Entries != 10*cap {
		t.Errorf("uncapped memo stats = %+v, want every entry retained", st)
	}
}
