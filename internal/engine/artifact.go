package engine

// Proof-memo persistence: the engine's definitive prover verdicts travel in
// the same aptc artifact as the shared DFA cache's working set, so a
// preloaded engine answers its first batch from memo hits instead of
// re-running proof searches.  Verdicts are theorems OF an axiom set, so
// every persisted goal is scoped to its set's canonical fingerprint
// (axiom.Set.Key): Preseed rebinds fingerprints to process-local IDs and a
// goal can only ever be consulted under an axiom set with an equal
// fingerprint.  Proved goals carry their full derivation tree, so restored
// proofs stay machine-checkable (core.Tester's VerifyProofs path re-runs
// prover.CheckProof on them exactly as on freshly searched ones).

import (
	"sort"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// SnapshotArtifact captures the engine's warm working set as an artifact:
// the shared DFA cache's automata and boolean decisions (SharedCache.
// Snapshot) plus the proof memo's definitive verdicts, in deterministic
// order.  Memo entries that are still in flight, exhausted, or whose
// identities cannot be reversed to serializable form are skipped.
func (e *Engine) SnapshotArtifact() *automata.Artifact {
	art := e.dfas.Snapshot()
	e.memo.appendGoals(art)
	AppendAxiomSet(art, e.axioms)
	return art
}

// AppendAxiomSet serializes the full axiom set — struct name, axiom names,
// declaration order — into the artifact's axiom-set table.  The canonical
// fingerprint alone cannot reconstruct a set (it is sorted and name-blind),
// but proof search explores axioms in declaration order and proof traces
// cite axioms by name, so boot-time engine prewarm needs full fidelity.
func AppendAxiomSet(art *automata.Artifact, set *axiom.Set) {
	exprIdx := make(map[string]int, len(art.Exprs))
	for i, s := range art.Exprs {
		exprIdx[s] = i
	}
	internExpr := func(s string) int {
		if i, ok := exprIdx[s]; ok {
			return i
		}
		i := len(art.Exprs)
		exprIdx[s] = i
		art.Exprs = append(art.Exprs, s)
		return i
	}
	as := automata.ArtifactAxiomSet{Name: set.StructName}
	for _, a := range set.Axioms {
		as.Axioms = append(as.Axioms, automata.ArtifactAxiom{
			Name: a.Name,
			Form: uint8(a.Form),
			RE1:  internExpr(pathexpr.Intern(a.RE1).String()),
			RE2:  internExpr(pathexpr.Intern(a.RE2).String()),
		})
	}
	art.AxiomSets = append(art.AxiomSets, as)
}

// ArtifactAxiomSets reconstructs the artifact's persisted axiom sets.  A
// set with any unreconstructable axiom (unparseable expression, unknown
// form) is dropped whole: a partial set would have a different fingerprint
// and silently shadow nothing, but prewarming an engine under it would
// waste the memory without ever matching a request.
func ArtifactAxiomSets(art *automata.Artifact) []*axiom.Set {
	var out []*axiom.Set
	for _, as := range art.AxiomSets {
		set := axiom.NewSet(as.Name)
		ok := len(as.Axioms) > 0
		for _, a := range as.Axioms {
			re1, ok1 := art.PreparedExpr(a.RE1)
			re2, ok2 := art.PreparedExpr(a.RE2)
			if !ok1 || !ok2 || a.Form > uint8(axiom.SameSrcEqual) {
				ok = false
				break
			}
			set.Axioms = append(set.Axioms, axiom.Axiom{
				Name: a.Name, Form: axiom.Form(a.Form), RE1: re1, RE2: re2,
			})
		}
		if ok {
			out = append(out, set)
		}
	}
	return out
}

// appendGoals serializes the memo's completed definitive entries into art.
func (m *Memo) appendGoals(art *automata.Artifact) {
	type goalEnt struct {
		sig     string
		form    prover.Form
		x, y    string
		theorem string
		result  prover.Result
		root    *prover.Step
	}
	var ents []goalEnt
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for key, e := range sh.m {
			select {
			case <-e.done:
			default:
				continue // in flight; its waiters own it
			}
			p := e.proof
			if p == nil || (p.Result != prover.Proved && p.Result != prover.NotProved) {
				continue
			}
			sig, ok := axiom.KeyForID(key.ax)
			if !ok {
				continue
			}
			xn, yn := pathexpr.LookupID(key.goal.A), pathexpr.LookupID(key.goal.B)
			if xn == nil || yn == nil {
				continue
			}
			ents = append(ents, goalEnt{
				sig: sig, form: key.goal.Form,
				x: xn.String(), y: yn.String(),
				theorem: p.Theorem, result: p.Result, root: p.Root,
			})
		}
		sh.mu.Unlock()
	}
	sort.Slice(ents, func(i, j int) bool {
		a, b := ents[i], ents[j]
		if a.sig != b.sig {
			return a.sig < b.sig
		}
		if a.form != b.form {
			return a.form < b.form
		}
		if a.x != b.x {
			return a.x < b.x
		}
		return a.y < b.y
	})

	exprIdx := make(map[string]int, len(art.Exprs))
	for i, s := range art.Exprs {
		exprIdx[s] = i
	}
	internExpr := func(s string) int {
		if i, ok := exprIdx[s]; ok {
			return i
		}
		i := len(art.Exprs)
		exprIdx[s] = i
		art.Exprs = append(art.Exprs, s)
		return i
	}
	sigIdx := make(map[string]int)
	internSig := func(s string) int {
		if i, ok := sigIdx[s]; ok {
			return i
		}
		i := len(art.Sigs)
		sigIdx[s] = i
		art.Sigs = append(art.Sigs, s)
		return i
	}
	var flatten func(s *prover.Step, out []automata.ArtifactStep) []automata.ArtifactStep
	flatten = func(s *prover.Step, out []automata.ArtifactStep) []automata.ArtifactStep {
		out = append(out, automata.ArtifactStep{
			Rule: uint8(s.Rule), Form: uint8(s.Form),
			AltOnLeft: s.AltOnLeft, StarOnLeft: s.StarOnLeft,
			X:       internExpr(pathexpr.Intern(s.X).String()),
			Y:       internExpr(pathexpr.Intern(s.Y).String()),
			SuffixI: int32(s.SuffixI), SuffixJ: int32(s.SuffixJ),
			AltIndex: int32(s.AltIndex), Kids: len(s.Children),
			By: s.By, ByT1: s.ByT1, ByT2: s.ByT2, Note: s.Note,
		})
		for _, c := range s.Children {
			out = flatten(c, out)
		}
		return out
	}
	for _, g := range ents {
		var steps []automata.ArtifactStep
		if g.root != nil {
			steps = flatten(g.root, nil)
		}
		art.Goals = append(art.Goals, automata.ArtifactGoal{
			Sig:     internSig(g.sig),
			Form:    uint8(g.form),
			Result:  uint8(g.result),
			X:       internExpr(g.x),
			Y:       internExpr(g.y),
			Theorem: g.theorem,
			Steps:   steps,
		})
	}
}

// Preseed inserts the artifact's goal verdicts into the memo, each under
// the process-local identity of its recorded axiom-set fingerprint, and
// returns the number inserted.  Entries already present, malformed entries,
// and entries whose expressions fail to re-parse are skipped — degraded
// warmth, never a verdict under the wrong axioms.
func (m *Memo) Preseed(art *automata.Artifact) int {
	sigIDs := make([]uint64, len(art.Sigs))
	for i, s := range art.Sigs {
		sigIDs[i] = axiom.IDForKey(s)
	}
	inserted := 0
	for _, g := range art.Goals {
		x, okX := art.PreparedExpr(g.X)
		y, okY := art.PreparedExpr(g.Y)
		if !okX || !okY || g.Sig < 0 || g.Sig >= len(sigIDs) {
			continue
		}
		root, rest, ok := rebuildStep(art, g.Steps)
		if !ok || len(rest) != 0 {
			continue
		}
		result := prover.Result(g.Result)
		// A proved verdict without its derivation (or vice versa) is
		// malformed: restoring it would break the Proved ⇒ checkable-tree
		// invariant VerifyProofs relies on.
		if (result == prover.Proved) != (root != nil) {
			continue
		}
		proof := &prover.Proof{Result: result, Theorem: g.Theorem, Root: root}
		key := memoKey{ax: sigIDs[g.Sig], goal: CanonicalGoalKey(prover.Form(g.Form), x, y)}
		sh := m.shardFor(key)
		done := make(chan struct{})
		close(done)
		sh.mu.Lock()
		if _, exists := sh.m[key]; !exists {
			sh.m[key] = &memoEntry{done: done, proof: proof}
			inserted++
		}
		sh.mu.Unlock()
	}
	return inserted
}

// rebuildStep reconstructs a prover step tree from its pre-order
// flattening, returning the unconsumed tail.  An empty list yields a nil
// root (the NotProved case).
func rebuildStep(art *automata.Artifact, flat []automata.ArtifactStep) (*prover.Step, []automata.ArtifactStep, bool) {
	if len(flat) == 0 {
		return nil, flat, true
	}
	n := flat[0]
	x, okX := art.PreparedExpr(n.X)
	y, okY := art.PreparedExpr(n.Y)
	if !okX || !okY || n.Kids < 0 || n.Kids > len(flat)-1 {
		return nil, nil, false
	}
	s := &prover.Step{
		Rule: prover.Rule(n.Rule), Form: prover.Form(n.Form),
		X: x, Y: y,
		SuffixI: int(n.SuffixI), SuffixJ: int(n.SuffixJ),
		By: n.By, ByT1: n.ByT1, ByT2: n.ByT2,
		AltOnLeft: n.AltOnLeft, AltIndex: int(n.AltIndex),
		StarOnLeft: n.StarOnLeft, Note: n.Note,
	}
	rest := flat[1:]
	for i := 0; i < n.Kids; i++ {
		var c *prover.Step
		var ok bool
		c, rest, ok = rebuildStep(art, rest)
		if !ok || c == nil {
			return nil, nil, false
		}
		s.Children = append(s.Children, c)
	}
	return s, rest, true
}
