package engine

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/automata"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

// The intern benchmarks measure the warm-hit cost of every cache the
// hash-consed core rekeyed: the shared DFA cache, its boolean-decision
// memo, the cross-query proof memo, and canonical goal keying.  Warm hits
// are the steady state of every serving workload — a long-lived aptserved
// process answers almost everything out of these paths — so their per-call
// cost and allocation count are the refactor's primary meters.

func benchInternExprs() (x, y pathexpr.Expr, a *automata.Alphabet) {
	x = pathexpr.MustParse("nrowE+.ncolE*")
	y = pathexpr.MustParse("ncolE+")
	return x, y, automata.AlphabetOf(x, y)
}

func BenchmarkSharedCacheDFAHit(b *testing.B) {
	x, _, a := benchInternExprs()
	c := automata.NewSharedCache(0, 0, 0)
	if _, err := c.DFA(x, a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.DFA(x, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSharedCacheOpsHit(b *testing.B) {
	x, y, a := benchInternExprs()
	c := automata.NewSharedCache(0, 0, 0)
	if _, err := c.Disjoint(x, y, a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Disjoint(x, y, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProofMemoHit(b *testing.B) {
	x, y, _ := benchInternExprs()
	m := NewMemo(0, 0, nil)
	proved := func() *prover.Proof { return &prover.Proof{Result: prover.Proved} }
	m.Prove(1, prover.SameSrc, x, y, proved)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Prove(1, prover.SameSrc, x, y, proved)
	}
}

func BenchmarkCanonicalGoalKey(b *testing.B) {
	x, y, _ := benchInternExprs()
	pathexpr.Intern(x).Simplified()
	pathexpr.Intern(y).Simplified()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CanonicalGoalKey(prover.SameSrc, x, y)
	}
}

// benchInternRow is one measured warm-hit path.
type benchInternRow struct {
	NsOp   int64 `json:"ns_op"`
	Allocs int64 `json:"allocs_op"`
}

// benchInternReport is the BENCH_intern.json schema.  Baseline rows are the
// same paths measured at the last string-keyed commit, frozen here so the
// report always carries its own before/after comparison.
type benchInternReport struct {
	Baseline map[string]benchInternRow `json:"baseline_string_keys"`
	Current  map[string]benchInternRow `json:"current_interned_keys"`
}

// internBaseline holds the warm-hit numbers measured immediately before the
// hash-consing refactor (string-keyed caches, commit 438c52b).
var internBaseline = map[string]benchInternRow{
	"shared_dfa_hit":     {NsOp: 259, Allocs: 5},
	"shared_ops_hit":     {NsOp: 474, Allocs: 9},
	"proof_memo_hit":     {NsOp: 1426, Allocs: 24},
	"canonical_goal_key": {NsOp: 1246, Allocs: 23},
}

// TestWriteBenchInternJSON measures the warm-hit benchmarks and writes
// BENCH_intern.json (driven by `make bench-intern`, which sets
// BENCH_INTERN_JSON to the output path; skipped otherwise).  The regression
// guards are asserted, not just reported: the ops-memo and proof-memo warm
// hits must be allocation-free, and every path must beat its string-keyed
// baseline.
func TestWriteBenchInternJSON(t *testing.T) {
	path := os.Getenv("BENCH_INTERN_JSON")
	if path == "" {
		t.Skip("set BENCH_INTERN_JSON to an output path (make bench-intern) to run")
	}
	report := benchInternReport{
		Baseline: internBaseline,
		Current:  make(map[string]benchInternRow),
	}
	for name, bench := range map[string]func(*testing.B){
		"shared_dfa_hit":     BenchmarkSharedCacheDFAHit,
		"shared_ops_hit":     BenchmarkSharedCacheOpsHit,
		"proof_memo_hit":     BenchmarkProofMemoHit,
		"canonical_goal_key": BenchmarkCanonicalGoalKey,
	} {
		r := testing.Benchmark(bench)
		report.Current[name] = benchInternRow{NsOp: r.NsPerOp(), Allocs: r.AllocsPerOp()}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, data)

	for _, name := range []string{"shared_ops_hit", "proof_memo_hit", "canonical_goal_key"} {
		if got := report.Current[name].Allocs; got != 0 {
			t.Errorf("%s allocates %d per warm hit, want 0", name, got)
		}
	}
	for name, cur := range report.Current {
		if base := report.Baseline[name]; cur.NsOp >= base.NsOp {
			t.Errorf("%s warm hit %dns/op is not faster than the string-keyed baseline %dns/op", name, cur.NsOp, base.NsOp)
		}
	}
}
