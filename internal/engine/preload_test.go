package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/automata"
)

// TestPreloadedEngineMatchesCold is the artifact round-trip differential:
// a cold engine answers the full seeded workload; its DFA-cache snapshot is
// saved, loaded back through the mmap path, and preseeded into a second
// engine, which must produce byte-identical verdicts — and do so without
// compiling a single DFA, proving the artifact really covers the working
// set rather than being quietly recompiled around.
func TestPreloadedEngineMatchesCold(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			queries := Workload(seed, 0)
			if len(queries) < 200 {
				t.Fatalf("workload too small: %d queries", len(queries))
			}
			cold := New(WorkloadWindows()[0], Options{Workers: 4})
			want := cold.Batch(context.Background(), queries)

			path := filepath.Join(t.TempDir(), "workload.aptc")
			if err := cold.DFACache().Snapshot().Save(path); err != nil {
				t.Fatalf("Save: %v", err)
			}
			art, err := automata.LoadArtifact(path)
			if err != nil {
				t.Fatalf("LoadArtifact: %v", err)
			}
			defer art.Close()
			if len(art.DFAs) == 0 {
				t.Fatal("snapshot holds no DFAs; the differential would be vacuous")
			}

			warm := New(WorkloadWindows()[0], Options{Workers: 4, Preload: art})
			got := warm.Batch(context.Background(), queries)
			if len(got) != len(want) {
				t.Fatalf("got %d results for %d queries", len(got), len(queries))
			}
			for i := range got {
				if got[i].Result != want[i].Result || got[i].Kind != want[i].Kind || got[i].Reason != want[i].Reason {
					t.Errorf("query %d (%s): preloaded engine says %v/%v/%q, cold engine says %v/%v/%q",
						i, describe(queries[i]),
						got[i].Result, got[i].Kind, got[i].Reason,
						want[i].Result, want[i].Kind, want[i].Reason)
				}
			}
			if st := warm.Stats(); st.DFA.Compiles != 0 {
				t.Errorf("preloaded engine compiled %d DFAs; the artifact should cover the whole working set", st.DFA.Compiles)
			}
		})
	}
}
