package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/pathexpr"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// DefaultMemoShards is the shard count used when Options.MemoShards is not
// positive.
const DefaultMemoShards = 16

// MemoStats counts the proof memo's work.
type MemoStats struct {
	// Lookups is the number of Prove calls routed through the memo.
	Lookups int64
	// Hits is the number served without a fresh proof search (including
	// callers that waited for an in-flight computation of the same goal).
	Hits int64
	// Misses is the number that ran a proof search.
	Misses int64
	// Evictions is the number of completed entries dropped by the per-shard
	// cap (0 forever when the memo is unbounded).
	Evictions int64
	// Entries is the number of memoized goals currently held.
	Entries int
}

// HitRate returns Hits/Lookups, or 0 when no lookups happened.
func (s MemoStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// memoEntry is one canonical goal's slot.  done is closed once proof is
// set; waiters blocked on an in-flight computation read proof afterwards.
type memoEntry struct {
	done  chan struct{}
	proof *prover.Proof
}

// memoKey identifies one memoized proof: the axiom set's interned identity
// plus the canonical goal key.  A fixed-size comparable struct — a warm
// lookup builds it without concatenating the axiom key and goal renderings
// the string-keyed memo paid for on every call.
type memoKey struct {
	ax   uint64
	goal GoalKey
}

type memoShard struct {
	mu sync.Mutex
	m  map[memoKey]*memoEntry
}

// Memo is the sharded cross-query proof memo.  It implements
// core.ProofMemo with single-flight semantics: when several workers reach
// the same canonical goal concurrently, exactly one runs the proof search
// and the rest wait for its result instead of duplicating the work.
//
// Exhausted proofs (budget, timeout, or cancellation artifacts — not
// verdicts about the axioms) are returned to their caller but never
// retained, and never inherited: a waiter that finds the computing worker
// produced an Exhausted artifact runs its own private search, so one
// timed-out query cannot poison the goal for callers with more budget.
//
// An optional per-shard entry cap bounds memory for long-lived processes:
// a shard at its cap drops its completed entries before the next insert
// (in-flight entries are kept — waiters hold them), and every drop counts
// as an eviction.
type Memo struct {
	shards   []memoShard
	perShard int // completed-entry cap per shard; 0 = unbounded

	lookups   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	cHits      *telemetry.Counter
	cMisses    *telemetry.Counter
	cEvictions *telemetry.Counter
}

// NewMemo returns a memo with the given shard count (DefaultMemoShards if
// not positive) and per-shard completed-entry cap (0 = unbounded),
// reporting hit/miss/eviction telemetry through tel (nil disables).
func NewMemo(shards, perShardCap int, tel *telemetry.Set) *Memo {
	if shards <= 0 {
		shards = DefaultMemoShards
	}
	m := &Memo{
		shards:     make([]memoShard, shards),
		perShard:   perShardCap,
		cHits:      tel.Counter("engine.memo_hits"),
		cMisses:    tel.Counter("engine.memo_misses"),
		cEvictions: tel.Counter("engine.memo_evictions"),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[memoKey]*memoEntry)
	}
	return m
}

// shardFor returns the shard owning key.
func (m *Memo) shardFor(key memoKey) *memoShard {
	h := pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.Mix64(pathexpr.MixInit, key.ax), uint64(key.goal.Form)), key.goal.A), key.goal.B)
	return &m.shards[h%uint64(len(m.shards))]
}

// Prove implements core.ProofMemo: it returns the memoized proof of the
// canonicalized goal under the axiom set identified by axiomID (see
// axiom.Set.ID), or runs compute once and shares its result.
func (m *Memo) Prove(axiomID uint64, form prover.Form, x, y pathexpr.Expr, compute func() *prover.Proof) *prover.Proof {
	m.lookups.Add(1)
	key := memoKey{ax: axiomID, goal: CanonicalGoalKey(form, x, y)}
	sh := m.shardFor(key)

	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.done
		if p := e.proof; p != nil && p.Result != prover.Exhausted {
			m.hits.Add(1)
			m.cHits.Add(1)
			return p
		}
		// The computing worker either died before publishing (panic unwound
		// through it) or ran out of *its* budget — an Exhausted artifact says
		// nothing about the axioms, and this waiter may have a longer
		// deadline.  Fall through to a private computation rather than
		// inheriting the artifact.
		m.misses.Add(1)
		m.cMisses.Add(1)
		return compute()
	}
	e := &memoEntry{done: make(chan struct{})}
	if m.perShard > 0 && len(sh.m) >= m.perShard {
		// Epoch eviction: drop every completed entry.  In-flight entries stay
		// — their waiters hold them, and dropping one would let a duplicate
		// search start behind the single-flight's back.
		dropped := int64(0)
		for k, old := range sh.m {
			select {
			case <-old.done:
				delete(sh.m, k)
				dropped++
			default:
			}
		}
		m.evictions.Add(dropped)
		m.cEvictions.Add(dropped)
	}
	sh.m[key] = e
	sh.mu.Unlock()
	m.misses.Add(1)
	m.cMisses.Add(1)

	defer func() {
		if e.proof == nil || e.proof.Result == prover.Exhausted {
			// Never retain budget artifacts (or a missing result after a
			// panic): drop the entry so later callers re-attempt the goal.
			sh.mu.Lock()
			if sh.m[key] == e {
				delete(sh.m, key)
			}
			sh.mu.Unlock()
		}
		close(e.done)
	}()
	e.proof = compute()
	return e.proof
}

// Stats returns the memo's counters and current size.
func (m *Memo) Stats() MemoStats {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].m)
		m.shards[i].mu.Unlock()
	}
	return MemoStats{
		Lookups:   m.lookups.Load(),
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Evictions: m.evictions.Load(),
		Entries:   n,
	}
}
