package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/pathexpr"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// DefaultMemoShards is the shard count used when Options.MemoShards is not
// positive.
const DefaultMemoShards = 16

// MemoStats counts the proof memo's work.
type MemoStats struct {
	// Lookups is the number of Prove calls routed through the memo.
	Lookups int64
	// Hits is the number served without a fresh proof search (including
	// callers that waited for an in-flight computation of the same goal).
	Hits int64
	// Misses is the number that ran a proof search.
	Misses int64
	// Entries is the number of memoized goals currently held.
	Entries int
}

// HitRate returns Hits/Lookups, or 0 when no lookups happened.
func (s MemoStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// memoEntry is one canonical goal's slot.  done is closed once proof is
// set; waiters blocked on an in-flight computation read proof afterwards.
type memoEntry struct {
	done  chan struct{}
	proof *prover.Proof
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]*memoEntry
}

// Memo is the sharded cross-query proof memo.  It implements
// core.ProofMemo with single-flight semantics: when several workers reach
// the same canonical goal concurrently, exactly one runs the proof search
// and the rest wait for its result instead of duplicating the work.
//
// Exhausted proofs (budget, timeout, or cancellation artifacts — not
// verdicts about the axioms) are returned to their caller but never
// retained, so one timed-out query cannot poison the goal for the rest of
// the batch.
type Memo struct {
	shards []memoShard

	lookups atomic.Int64
	hits    atomic.Int64
	misses  atomic.Int64

	cHits   *telemetry.Counter
	cMisses *telemetry.Counter
}

// NewMemo returns a memo with the given shard count (DefaultMemoShards if
// not positive), reporting hit/miss telemetry through tel (nil disables).
func NewMemo(shards int, tel *telemetry.Set) *Memo {
	if shards <= 0 {
		shards = DefaultMemoShards
	}
	m := &Memo{
		shards:  make([]memoShard, shards),
		cHits:   tel.Counter("engine.memo_hits"),
		cMisses: tel.Counter("engine.memo_misses"),
	}
	for i := range m.shards {
		m.shards[i].m = make(map[string]*memoEntry)
	}
	return m
}

// Prove implements core.ProofMemo: it returns the memoized proof of the
// canonicalized goal under axiomKey, or runs compute once and shares its
// result.
func (m *Memo) Prove(axiomKey string, form prover.Form, x, y pathexpr.Expr, compute func() *prover.Proof) *prover.Proof {
	m.lookups.Add(1)
	key := axiomKey + "\x00" + CanonicalGoal(form, x, y)
	sh := &m.shards[fnv32a(key)%uint32(len(m.shards))]

	sh.mu.Lock()
	if e, ok := sh.m[key]; ok {
		sh.mu.Unlock()
		<-e.done
		if e.proof != nil {
			m.hits.Add(1)
			m.cHits.Add(1)
			return e.proof
		}
		// The computing worker died before publishing (panic unwound through
		// it); fall through to a private computation.
		m.misses.Add(1)
		m.cMisses.Add(1)
		return compute()
	}
	e := &memoEntry{done: make(chan struct{})}
	sh.m[key] = e
	sh.mu.Unlock()
	m.misses.Add(1)
	m.cMisses.Add(1)

	defer func() {
		if e.proof == nil || e.proof.Result == prover.Exhausted {
			// Never retain budget artifacts (or a missing result after a
			// panic): drop the entry so later callers re-attempt the goal.
			sh.mu.Lock()
			delete(sh.m, key)
			sh.mu.Unlock()
		}
		close(e.done)
	}()
	e.proof = compute()
	return e.proof
}

// Stats returns the memo's counters and current size.
func (m *Memo) Stats() MemoStats {
	n := 0
	for i := range m.shards {
		m.shards[i].mu.Lock()
		n += len(m.shards[i].m)
		m.shards[i].mu.Unlock()
	}
	return MemoStats{
		Lookups: m.lookups.Load(),
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Entries: n,
	}
}

// fnv32a hashes a key to a shard index (FNV-1a, inlined to keep the memo
// dependency-free).
func fnv32a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}
