package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// Options configures an Engine.  The zero value selects a single worker
// with default prover budgets and no per-query timeout.
type Options struct {
	// Workers is the pool width Batch fans queries across (minimum 1).
	Workers int
	// QueryTimeout, when positive, bounds each query's wall-clock proof
	// search; an expired query degrades to Maybe (never to an unsound No).
	QueryTimeout time.Duration
	// Prover configures the per-worker provers (budgets, ablations,
	// telemetry).  DFACache and Interrupt are overwritten by the engine.
	Prover prover.Options
	// VerifyProofs re-checks every prover-backed No with the independent
	// proof checker, as on the sequential Tester.
	VerifyProofs bool
	// Telemetry receives the engine's batch/memo/cache counters (nil, the
	// default, disables them).  Also passed to the worker provers unless
	// Prover.Telemetry is already set.
	Telemetry *telemetry.Set
	// DFAShards and DFAShardCap size the shared DFA cache (defaults:
	// automata.DefaultSharedShards, unbounded shards).
	DFAShards   int
	DFAShardCap int
	// MemoShards and MemoShardCap size the cross-query proof memo
	// (defaults: DefaultMemoShards, unbounded shards).  Long-lived
	// processes should set both caps — an unbounded memo is fine for a
	// one-shot batch and a leak for a server.
	MemoShards   int
	MemoShardCap int
	// Preload, when non-nil, preseeds the shared DFA cache and the proof
	// memo from a compiled automata artifact (see cmd/aptc), so the engine
	// boots with the artifact's working set already warm instead of paying
	// cold subset constructions and proof searches on first queries.  Goal
	// verdicts are scoped to their axiom-set fingerprint and never consulted
	// under a different set.
	Preload *automata.Artifact
}

// Stats is a point-in-time snapshot of the engine's shared state.
type Stats struct {
	// Batches and Queries count Batch calls and the queries they carried.
	Batches int64
	Queries int64
	// The degraded-toward-Maybe counters, split by the interrupt guard's
	// three reasons so a timed-out query stays distinguishable from a
	// deadline-expired or canceled one: Timeouts counts per-query
	// QueryTimeout expiries, DeadlineExpired the batch context's own
	// deadline passing, Canceled outright context cancellation.  Each
	// degraded query increments exactly one of the three.
	Timeouts        int64
	DeadlineExpired int64
	Canceled        int64
	// Memo is the cross-query proof memo's counters.
	Memo MemoStats
	// DFA is the shared compilation cache's counters.
	DFA automata.CacheStats
}

// Engine answers batches of dependence queries concurrently while keeping
// every verdict identical to the sequential core.Tester's (see package doc;
// differential_test.go enforces the equivalence).  An Engine is safe for
// concurrent use, though a single Batch already saturates its pool.
type Engine struct {
	axioms *axiom.Set
	opts   Options
	pool   *parallel.Pool
	dfas   *automata.SharedCache
	memo   *Memo

	batches   atomic.Int64
	queries   atomic.Int64
	timeouts  atomic.Int64
	deadlines atomic.Int64
	canceled  atomic.Int64

	cBatches   *telemetry.Counter
	cQueries   *telemetry.Counter
	cTimeouts  *telemetry.Counter
	cDeadlines *telemetry.Counter
	cCanceled  *telemetry.Counter
}

// New builds an engine over the default axiom set.  Queries carrying their
// own Axioms (validity windows) are honored exactly as on the sequential
// tester; the shared caches key by axiom-set fingerprint, so windows with
// equal alphabets still share compiled DFAs.
func New(axioms *axiom.Set, opts Options) *Engine {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	tel := opts.Telemetry
	if opts.Prover.Telemetry == nil {
		opts.Prover.Telemetry = tel
	}
	dfas := automata.NewSharedCache(opts.Prover.DFAStateLimit, opts.DFAShards, opts.DFAShardCap)
	dfas.SetTelemetry(tel)
	memo := NewMemo(opts.MemoShards, opts.MemoShardCap, tel)
	if opts.Preload != nil {
		dfas.Preseed(opts.Preload)
		memo.Preseed(opts.Preload)
	}
	return &Engine{
		axioms:     axioms,
		opts:       opts,
		pool:       parallel.NewPool(opts.Workers).SetTelemetry(tel),
		dfas:       dfas,
		memo:       memo,
		cBatches:   tel.Counter("engine.batches"),
		cQueries:   tel.Counter("engine.queries"),
		cTimeouts:  tel.Counter("engine.degraded.query_timeout"),
		cDeadlines: tel.Counter("engine.degraded.request_deadline"),
		cCanceled:  tel.Counter("engine.degraded.canceled"),
	}
}

// Axioms returns the engine's default axiom set.
func (e *Engine) Axioms() *axiom.Set { return e.axioms }

// Workers returns the engine's pool width.
func (e *Engine) Workers() int { return e.opts.Workers }

// Stats snapshots the engine's counters and shared-cache state.  (The
// engine keeps its own atomics because telemetry instruments are nil, hence
// unreadable, when telemetry is disabled.)
func (e *Engine) Stats() Stats {
	return Stats{
		Batches:         e.batches.Load(),
		Queries:         e.queries.Load(),
		Timeouts:        e.timeouts.Load(),
		DeadlineExpired: e.deadlines.Load(),
		Canceled:        e.canceled.Load(),
		Memo:            e.memo.Stats(),
		DFA:             e.dfas.Stats(),
	}
}

// Memo exposes the cross-query proof memo (for stats reporting).
func (e *Engine) Memo() *Memo { return e.memo }

// DFACache exposes the shared compilation cache (for stats reporting).
func (e *Engine) DFACache() *automata.SharedCache { return e.dfas }

// interruptGuard is one worker's prover interrupt hook: it trips on batch
// cancellation, on the batch context's own deadline (a server's per-request
// deadline), or on the running query's timeout — and records which, so the
// degraded outcome can say why.
type interruptGuard struct {
	ctx      context.Context
	deadline time.Time // zero when no per-query timeout
	timedOut bool      // the per-query timeout expired
	expired  bool      // the batch context's deadline passed
	canceled bool      // the batch context was canceled outright
}

// tripped is polled by the prover mid-search (prover.Options.Interrupt).
func (g *interruptGuard) tripped() bool {
	if g.canceled || g.timedOut || g.expired {
		return true
	}
	select {
	case <-g.ctx.Done():
		if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
			g.expired = true
		} else {
			g.canceled = true
		}
		return true
	default:
	}
	if !g.deadline.IsZero() && !time.Now().Before(g.deadline) {
		g.timedOut = true
		return true
	}
	return false
}

// arm resets the guard for the next query.
func (g *interruptGuard) arm(timeout time.Duration) {
	g.timedOut = false
	g.expired = false
	g.canceled = false
	if timeout > 0 {
		g.deadline = time.Now().Add(timeout)
	} else {
		g.deadline = time.Time{}
	}
}

// Batch answers every query, fanning the slice across the pool.  The
// result slice is index-aligned with queries — results[i] answers
// queries[i] regardless of which worker ran it or in what order — and the
// verdicts are those the sequential Tester would produce, provided budgets
// do not bind (a query interrupted by ctx or QueryTimeout degrades to
// Maybe, the sound direction).  Queries not yet started when ctx is
// canceled are answered Maybe without searching.
func (e *Engine) Batch(ctx context.Context, queries []core.Query) []core.Outcome {
	return e.BatchTimeout(ctx, queries, e.opts.QueryTimeout)
}

// BatchTimeout is Batch with a per-call override of the per-query timeout
// (perQuery <= 0 disables it for this call).  A server uses this to honor a
// client-chosen budget without rebuilding the engine; the warm caches are
// shared either way.  A deadline on ctx bounds the whole batch: queries
// still searching when it passes degrade to Maybe with a deadline reason,
// exactly like a per-query timeout (and unlike an outright cancellation).
func (e *Engine) BatchTimeout(ctx context.Context, queries []core.Query, perQuery time.Duration) []core.Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	e.batches.Add(1)
	e.queries.Add(int64(len(queries)))
	e.cBatches.Add(1)
	e.cQueries.Add(int64(len(queries)))
	results := make([]core.Outcome, len(queries))
	rt, parent := telemetry.TraceScope(ctx)
	e.pool.ForEachChunk(len(queries), func(lo, hi int) {
		ws := rt.StartSpan("engine.worker", parent)
		guard := &interruptGuard{ctx: ctx}
		opts := e.opts.Prover
		opts.DFACache = e.dfas
		opts.Interrupt = guard.tripped
		if rt != nil {
			opts.Trace = rt
			opts.TraceParent = ws.ID()
		}
		tester := core.NewTester(e.axioms, opts).SetProofMemo(e.memo)
		tester.VerifyProofs = e.opts.VerifyProofs
		for i := lo; i < hi; i++ {
			results[i] = e.runOne(tester, guard, queries[i], perQuery)
		}
		ws.End(telemetry.Int("queries", hi-lo))
	})
	return results
}

// degrade books one query's degradation under reason — on the engine's
// split counters and, when the batch context carries a trace scope, on the
// request's degradation profile (which is what marks the request for the
// flight recorder).
func (e *Engine) degrade(ctx context.Context, reason telemetry.DegradeReason) {
	switch reason {
	case telemetry.DegradeQueryTimeout:
		e.timeouts.Add(1)
		e.cTimeouts.Add(1)
	case telemetry.DegradeRequestDeadline:
		e.deadlines.Add(1)
		e.cDeadlines.Add(1)
	case telemetry.DegradeCanceled:
		e.canceled.Add(1)
		e.cCanceled.Add(1)
	}
	if rt, _ := telemetry.TraceScope(ctx); rt != nil {
		rt.NoteDegraded(reason)
	}
}

// runOne answers one query on the worker's tester, degrading to Maybe with
// an explanatory reason when the guard trips.
func (e *Engine) runOne(tester *core.Tester, guard *interruptGuard, q core.Query, perQuery time.Duration) core.Outcome {
	guard.arm(perQuery)
	if guard.tripped() {
		switch {
		case guard.canceled:
			e.degrade(guard.ctx, telemetry.DegradeCanceled)
			return core.Outcome{
				Result: core.Maybe,
				Kind:   core.Classify(q.S, q.T),
				Reason: fmt.Sprintf("batch canceled before query ran (%v); dependence assumed", guard.ctx.Err()),
			}
		case guard.expired:
			e.degrade(guard.ctx, telemetry.DegradeRequestDeadline)
			return core.Outcome{
				Result: core.Maybe,
				Kind:   core.Classify(q.S, q.T),
				Reason: "request deadline expired before query ran; dependence assumed",
			}
		}
	}
	out := tester.DepTest(q)
	// A guard trip can only have weakened the answer toward Maybe (the
	// prover maps interrupts to Exhausted); make the reason say why.  A
	// verdict reached before the trip stands untouched.
	if out.Result == core.Maybe {
		switch {
		case guard.canceled:
			e.degrade(guard.ctx, telemetry.DegradeCanceled)
			out.Reason = fmt.Sprintf("batch canceled mid-search (%v); dependence assumed", guard.ctx.Err())
		case guard.expired:
			e.degrade(guard.ctx, telemetry.DegradeRequestDeadline)
			out.Reason = "request deadline expired mid-search; dependence assumed"
		case guard.timedOut:
			e.degrade(guard.ctx, telemetry.DegradeQueryTimeout)
			out.Reason = fmt.Sprintf("query timeout (%v) exhausted the search; dependence assumed", perQuery)
		}
	}
	return out
}
