package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// The interrupt guard distinguishes three degradation paths — per-query
// timeout, request deadline, outright cancellation — and each must book
// itself on exactly one counter triple (Stats field, telemetry counter,
// RequestTrace reason).  A regression that merges or cross-wires them makes
// "why are my answers Maybe" undiagnosable from metrics, so every sub-test
// asserts its own counter moved and the other two stayed at zero.

// degradedHarness runs one batch with a trace scope attached and returns
// the engine stats, telemetry counters, and per-reason trace counts.
func degradedHarness(t *testing.T, ctx context.Context, queries []core.Query, perQuery time.Duration) (Stats, map[string]int64, [telemetry.NumDegradeReasons]int64) {
	t.Helper()
	tel := telemetry.New(telemetry.NewRegistry(), nil)
	rt := telemetry.NewRequestTrace(telemetry.NewTraceContext())
	ctx = telemetry.WithTraceScope(ctx, rt, rt.Context().SpanID)
	eng := New(WorkloadWindows()[0], Options{Workers: 2, Telemetry: tel})
	for i, out := range eng.BatchTimeout(ctx, queries, perQuery) {
		if out.Result != core.Maybe {
			t.Errorf("results[%d] = %v, want Maybe", i, out.Result)
		}
	}
	return eng.Stats(), tel.Metrics().Snapshot().Counters, rt.DegradedCounts()
}

func TestDegradedCountersSplitByReason(t *testing.T) {
	t.Run("query_timeout", func(t *testing.T) {
		// heavyQuery's search makes well over 64 prove calls (the poll
		// stride), so a 1ns per-query timeout trips mid-search —
		// deterministically a timeout, never a deadline or cancel.
		st, counters, deg := degradedHarness(t, context.Background(),
			[]core.Query{heavyQuery()}, time.Nanosecond)
		if st.Timeouts != 1 || st.DeadlineExpired != 0 || st.Canceled != 0 {
			t.Errorf("stats = %d/%d/%d timeout/deadline/canceled, want 1/0/0",
				st.Timeouts, st.DeadlineExpired, st.Canceled)
		}
		if counters["engine.degraded.query_timeout"] != 1 ||
			counters["engine.degraded.request_deadline"] != 0 ||
			counters["engine.degraded.canceled"] != 0 {
			t.Errorf("telemetry counters = %v, want only query_timeout at 1", counters)
		}
		if deg != [telemetry.NumDegradeReasons]int64{telemetry.DegradeQueryTimeout: 1} {
			t.Errorf("trace degraded counts = %v, want only query_timeout at 1", deg)
		}
	})

	t.Run("request_deadline", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		queries := []core.Query{disjointQuery(), aliasQuery()}
		st, counters, deg := degradedHarness(t, ctx, queries, 0)
		if st.DeadlineExpired != 2 || st.Timeouts != 0 || st.Canceled != 0 {
			t.Errorf("stats = %d/%d/%d timeout/deadline/canceled, want 0/2/0",
				st.Timeouts, st.DeadlineExpired, st.Canceled)
		}
		if counters["engine.degraded.request_deadline"] != 2 ||
			counters["engine.degraded.query_timeout"] != 0 ||
			counters["engine.degraded.canceled"] != 0 {
			t.Errorf("telemetry counters = %v, want only request_deadline at 2", counters)
		}
		if deg != [telemetry.NumDegradeReasons]int64{telemetry.DegradeRequestDeadline: 2} {
			t.Errorf("trace degraded counts = %v, want only request_deadline at 2", deg)
		}
	})

	t.Run("canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		queries := []core.Query{disjointQuery(), aliasQuery(), disjointQuery()}
		st, counters, deg := degradedHarness(t, ctx, queries, 0)
		if st.Canceled != 3 || st.Timeouts != 0 || st.DeadlineExpired != 0 {
			t.Errorf("stats = %d/%d/%d timeout/deadline/canceled, want 0/0/3",
				st.Timeouts, st.DeadlineExpired, st.Canceled)
		}
		if counters["engine.degraded.canceled"] != 3 ||
			counters["engine.degraded.query_timeout"] != 0 ||
			counters["engine.degraded.request_deadline"] != 0 {
			t.Errorf("telemetry counters = %v, want only canceled at 3", counters)
		}
		if deg != [telemetry.NumDegradeReasons]int64{telemetry.DegradeCanceled: 3} {
			t.Errorf("trace degraded counts = %v, want only canceled at 3", deg)
		}
	})
}
