package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/prover"
)

// The benchmarks compare one cold batch against one cold sequential sweep
// over the same ~200-query workload: a fresh tester/engine per iteration,
// so neither side carries warm caches between iterations.  The engine's
// advantage is architectural, not parallel-hardware luck — the canonical
// memo answers each swapped orientation from the first proof, and the
// shared DFA cache compiles each goal automaton once across all four
// validity windows instead of once per window.

const benchSeed = 1

func BenchmarkSequentialWorkload(b *testing.B) {
	queries := Workload(benchSeed, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tester := core.NewTester(WorkloadWindows()[0], prover.Options{})
		for _, q := range queries {
			tester.DepTest(q)
		}
	}
}

func BenchmarkEngineWorkload(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			queries := Workload(benchSeed, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := New(WorkloadWindows()[0], Options{Workers: workers})
				eng.Batch(context.Background(), queries)
			}
		})
	}
}

// benchReport is the BENCH_engine.json schema.
type benchReport struct {
	Queries        int              `json:"queries"`
	SequentialNsOp int64            `json:"sequential_ns_op"`
	Engine         []benchEngineRow `json:"engine"`
}

type benchEngineRow struct {
	Workers     int     `json:"workers"`
	NsOp        int64   `json:"ns_op"`
	Speedup     float64 `json:"speedup_vs_sequential"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	DFAHitRate  float64 `json:"dfa_hit_rate"`
}

// TestWriteBenchEngineJSON measures the engine-vs-sequential benchmark and
// writes BENCH_engine.json (driven by `make bench-json`, which sets
// BENCH_ENGINE_JSON to the output path; skipped otherwise).  The acceptance
// thresholds are asserted, not just reported: the 8-worker engine must beat
// the sequential sweep by ≥2× with a >50% shared-cache hit rate.
func TestWriteBenchEngineJSON(t *testing.T) {
	path := os.Getenv("BENCH_ENGINE_JSON")
	if path == "" {
		t.Skip("set BENCH_ENGINE_JSON to an output path (make bench-json) to run")
	}
	queries := Workload(benchSeed, 0)
	report := benchReport{Queries: len(queries)}

	seq := testing.Benchmark(BenchmarkSequentialWorkload)
	report.SequentialNsOp = seq.NsPerOp()

	for _, workers := range []int{1, 4, 8} {
		workers := workers
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := New(WorkloadWindows()[0], Options{Workers: workers})
				eng.Batch(context.Background(), queries)
			}
		})
		// Hit rates come from one untimed batch on a fresh engine — the
		// same cold-start shape the timing measured.
		eng := New(WorkloadWindows()[0], Options{Workers: workers})
		eng.Batch(context.Background(), queries)
		st := eng.Stats()
		dfaRate := 0.0
		if st.DFA.Lookups > 0 {
			dfaRate = float64(st.DFA.Hits) / float64(st.DFA.Lookups)
		}
		report.Engine = append(report.Engine, benchEngineRow{
			Workers:     workers,
			NsOp:        r.NsPerOp(),
			Speedup:     float64(report.SequentialNsOp) / float64(r.NsPerOp()),
			MemoHitRate: st.Memo.HitRate(),
			DFAHitRate:  dfaRate,
		})
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s:\n%s", path, data)

	last := report.Engine[len(report.Engine)-1]
	if last.Speedup < 2.0 {
		t.Errorf("8-worker engine speedup %.2f× < 2× over sequential", last.Speedup)
	}
	if last.MemoHitRate <= 0.5 {
		t.Errorf("8-worker memo hit rate %.0f%% ≤ 50%%", 100*last.MemoHitRate)
	}
}
