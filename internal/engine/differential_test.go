package engine

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/prover"
)

// runSequential answers the workload on a plain sequential core.Tester —
// the reference the engine must agree with.  Each query carries its own
// axiom window, so one tester (whose per-window provers are memoized by
// fingerprint) covers the whole workload.
func runSequential(t *testing.T, queries []core.Query) []core.Outcome {
	t.Helper()
	tester := core.NewTester(WorkloadWindows()[0], prover.Options{})
	out := make([]core.Outcome, len(queries))
	for i, q := range queries {
		out[i] = tester.DepTest(q)
	}
	return out
}

func describe(q core.Query) string {
	return fmt.Sprintf("%v vs %v (rel %d, window %s)", q.S, q.T, q.Relation, q.Axioms.StructName)
}

// TestDifferentialAgainstSequential is the satellite harness: seeded
// pseudo-random workloads (≥200 queries per seed) must get identical
// verdicts — Result and DepKind — from engine.Batch and from the
// sequential tester, at several pool widths.
func TestDifferentialAgainstSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 20260806} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			queries := Workload(seed, 0)
			if len(queries) < 200 {
				t.Fatalf("workload too small: %d queries", len(queries))
			}
			want := runSequential(t, queries)
			// The workload must be budget-insensitive: an Exhausted proof's
			// Maybe could legitimately differ between warm and cold caches,
			// which would make the differential comparison vacuous.
			for i, o := range want {
				for _, pf := range []*prover.Proof{o.Proof, o.AuxProof} {
					if pf != nil && pf.Result == prover.Exhausted {
						t.Fatalf("query %d (%s): sequential proof exhausted its budget; workload must stay within default budgets", i, describe(queries[i]))
					}
				}
			}
			for _, workers := range []int{1, 4, 8} {
				eng := New(WorkloadWindows()[0], Options{Workers: workers})
				got := eng.Batch(context.Background(), queries)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: got %d results for %d queries", workers, len(got), len(queries))
				}
				for i := range got {
					if got[i].Result != want[i].Result || got[i].Kind != want[i].Kind {
						t.Errorf("workers=%d query %d (%s): engine says %v/%v, sequential says %v/%v",
							workers, i, describe(queries[i]),
							got[i].Result, got[i].Kind, want[i].Result, want[i].Kind)
					}
					if got[i].Reason != want[i].Reason {
						t.Errorf("workers=%d query %d (%s): engine reason %q, sequential reason %q",
							workers, i, describe(queries[i]), got[i].Reason, want[i].Reason)
					}
				}
			}
		})
	}
}

// TestBatchRepeatDeterministic re-runs one batch on one engine and demands
// bit-identical verdicts: the shared caches may change *when* an answer is
// found, never *what* it is.
func TestBatchRepeatDeterministic(t *testing.T) {
	queries := Workload(3, 0)
	eng := New(WorkloadWindows()[0], Options{Workers: 4})
	first := eng.Batch(context.Background(), queries)
	for round := 0; round < 3; round++ {
		again := eng.Batch(context.Background(), queries)
		for i := range again {
			if again[i].Result != first[i].Result || again[i].Kind != first[i].Kind || again[i].Reason != first[i].Reason {
				t.Fatalf("round %d query %d (%s): verdict changed from %v/%v/%q to %v/%v/%q",
					round, i, describe(queries[i]),
					first[i].Result, first[i].Kind, first[i].Reason,
					again[i].Result, again[i].Kind, again[i].Reason)
			}
		}
	}
}

// TestVerifyProofsMatchesSequential runs the differential comparison with
// independent proof checking on, covering the checker path under the memo
// (a memoized proof must still check on every query that receives it).
func TestVerifyProofsMatchesSequential(t *testing.T) {
	queries := Workload(11, 0)
	tester := core.NewTester(WorkloadWindows()[0], prover.Options{})
	tester.VerifyProofs = true
	want := make([]core.Outcome, len(queries))
	for i, q := range queries {
		want[i] = tester.DepTest(q)
	}
	eng := New(WorkloadWindows()[0], Options{Workers: 4, VerifyProofs: true})
	got := eng.Batch(context.Background(), queries)
	for i := range got {
		if got[i].Result != want[i].Result || got[i].Kind != want[i].Kind {
			t.Errorf("query %d (%s): engine says %v/%v, sequential says %v/%v",
				i, describe(queries[i]), got[i].Result, got[i].Kind, want[i].Result, want[i].Kind)
		}
	}
}
