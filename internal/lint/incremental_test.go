package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lang"
)

// incrSrc is a unit with an interprocedural chain (top calls mid calls
// leaf), an unrelated function, and both a provable loop and a Maybe loop —
// the Maybe matters because its diagnostic quotes proof-search statistics,
// the part of the output most sensitive to cross-run cache reuse.
const incrSrc = `
struct Cell {
	struct Cell *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

struct Ring {
	struct Ring *next;
	int v;
};

void leaf(struct Cell *c) {
	c->v = 1;
}

void mid(struct Cell *c) {
	leaf(c);
}

void top(struct Cell *l) {
	struct Cell *p;
	p = l;
	while (p != NULL) {
		p->v = 2;
		p = p->next;
	}
	mid(l);
}

void other(struct Ring *s, int k) {
	struct Ring *p;
	int i;
	p = s;
	i = 0;
	while (i < k) {
		p->v = i;
		p = p->next;
		i = i + 1;
	}
}
`

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestFingerprintsStableUnderWhitespace(t *testing.T) {
	a := fingerprints(parse(t, incrSrc))
	b := fingerprints(parse(t, "\n\n"+strings.ReplaceAll(incrSrc, "\n\t", "\n\n\t")))
	if !reflect.DeepEqual(a.funcs, b.funcs) || !reflect.DeepEqual(a.structs, b.structs) {
		t.Errorf("whitespace shifted fingerprints:\n%v\nvs\n%v", a.funcs, b.funcs)
	}
}

func TestFingerprintsDirtyTransitiveCallers(t *testing.T) {
	a := fingerprints(parse(t, incrSrc))
	b := fingerprints(parse(t, strings.Replace(incrSrc, "c->v = 1;", "c->v = 9;", 1)))

	// Editing leaf dirties leaf, mid (direct caller), and top (transitive
	// caller) — but not other.
	for _, fn := range []string{"leaf", "mid", "top"} {
		if a.funcs[fn] == b.funcs[fn] {
			t.Errorf("%s fingerprint unchanged after a callee edit", fn)
		}
	}
	if a.funcs["other"] != b.funcs["other"] {
		t.Errorf("other dirtied by an edit in an unrelated call chain")
	}
	if !reflect.DeepEqual(a.structs, b.structs) {
		t.Errorf("struct fingerprints dirtied by a function-body edit")
	}
}

func TestFingerprintsStructEditDirtiesEverything(t *testing.T) {
	a := fingerprints(parse(t, incrSrc))
	b := fingerprints(parse(t, strings.Replace(incrSrc, "p.next+ <> p.eps", "p.next.next* <> p.eps", 1)))
	for fn := range a.funcs {
		if a.funcs[fn] == b.funcs[fn] {
			t.Errorf("%s fingerprint unchanged after an axiom edit", fn)
		}
	}
	if a.structs["Cell"] == b.structs["Cell"] {
		t.Errorf("Cell fingerprint unchanged after an axiom edit")
	}
}

// TestIncrementalFirstPassMatchesPlainRun: a cold incremental run must be
// indistinguishable from a plain driver run.
func TestIncrementalFirstPassMatchesPlainRun(t *testing.T) {
	prog := parse(t, incrSrc)
	plain, err := NewDriver(nil).Run("u.c", prog)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(NewDriver(nil))
	got, stats, err := inc.Run("u.c", parse(t, incrSrc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Errorf("cold incremental run differs from plain run:\n%v\nvs\n%v", got, plain)
	}
	if stats.Reused != 0 {
		t.Errorf("cold run reused %d declarations", stats.Reused)
	}
}

// TestIncrementalEditCycle drives a multi-edit session: after each edit the
// incremental result must be byte-identical to a cold run over the same
// source, and only the fingerprint-dirty subset may be re-analyzed.
func TestIncrementalEditCycle(t *testing.T) {
	edits := []struct {
		name        string
		src         string
		maxAnalyzed int // upper bound on re-analyzed declarations
	}{
		{"noop", incrSrc, 0},
		{"whitespace", "\n\n" + incrSrc, 0},
		{"leaf-edit", strings.Replace(incrSrc, "c->v = 1;", "c->v = 3;", 1), 3}, // leaf+mid+top
		{"revert", incrSrc, 3}, // leaf chain back
		{"other-edit", strings.Replace(incrSrc, "p->v = i;", "p->v = k;", 1), 1},                          // other only
		{"struct-edit", strings.Replace(incrSrc, "int v;\n\taxioms", "int v;\n\tint w;\n\taxioms", 1), 6}, // everything
	}

	inc := NewIncremental(NewDriver(nil))
	if _, _, err := inc.Run("u.c", parse(t, incrSrc)); err != nil {
		t.Fatal(err)
	}
	for _, e := range edits {
		got, stats, err := inc.Run("u.c", parse(t, e.src))
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		cold, err := NewDriver(nil).Run("u.c", parse(t, e.src))
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if !reflect.DeepEqual(got, cold) {
			t.Errorf("%s: incremental result diverges from cold run:\ngot  %v\nwant %v", e.name, got, cold)
		}
		if stats.Analyzed > e.maxAnalyzed {
			t.Errorf("%s: re-analyzed %d declarations, want at most %d", e.name, stats.Analyzed, e.maxAnalyzed)
		}
	}
}

// TestIncrementalRebasesReusedDiagnostics: a whitespace edit above a
// function shifts its reused diagnostics (and their related notes) without
// re-analysis.
func TestIncrementalRebasesReusedDiagnostics(t *testing.T) {
	src := `
struct N {
	struct N *nx;
	int d;
};

void splice(struct N *a) {
	struct N *t;
	t = a->nx;
	if (t != NULL) {
		a->nx = NULL;
		t->d = 1;
	}
}
`
	inc := NewIncremental(NewDriver(nil))
	first, _, err := inc.Run("u.c", parse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("seed program produced no diagnostics")
	}
	shifted, stats, err := inc.Run("u.c", parse(t, "\n\n\n"+src))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 0 || stats.Reused == 0 {
		t.Fatalf("whitespace edit re-analyzed %d, reused %d", stats.Analyzed, stats.Reused)
	}
	if len(shifted) != len(first) {
		t.Fatalf("diagnostic count changed: %d vs %d", len(shifted), len(first))
	}
	for i := range first {
		if shifted[i].Pos.Line != first[i].Pos.Line+3 {
			t.Errorf("diag %d line %d, want %d", i, shifted[i].Pos.Line, first[i].Pos.Line+3)
		}
		for j := range first[i].Related {
			if shifted[i].Related[j].Pos.Line != first[i].Related[j].Pos.Line+3 {
				t.Errorf("diag %d related %d not rebased", i, j)
			}
		}
	}
}

// TestStoreRoundTrip: persisting the store and reloading it preserves the
// no-reanalysis property across driver instances (the -incr-cache flow).
func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	inc := NewIncremental(NewDriver(nil))
	first, _, err := inc.Run("u.c", parse(t, incrSrc))
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Store.Save(path); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}
	inc2 := &IncrementalDriver{Driver: NewDriver(nil), Store: loaded, Caches: NewCaches()}
	again, stats, err := inc2.Run("u.c", parse(t, incrSrc))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Analyzed != 0 {
		t.Errorf("reloaded store still re-analyzed %d declarations", stats.Analyzed)
	}
	if !reflect.DeepEqual(again, first) {
		t.Errorf("diagnostics diverge after store round-trip:\n%v\nvs\n%v", again, first)
	}

	// A corrupt or foreign-schema store degrades to a full re-analysis,
	// never an error.
	fresh, err := LoadStore(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || len(fresh.Files) != 0 {
		t.Errorf("missing store: %v, %v", fresh, err)
	}
}

// TestConversionRateGate is the precision-regression gate: the fraction of
// parallelization verdicts the guard layer upgrades from Maybe to definite
// on the seeded corpus must not drop below the committed baseline.
func TestConversionRateGate(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	upgraded, maybes := corpusConversion(t, files)
	if upgraded == 0 {
		t.Fatalf("no guard-upgraded verdicts on the corpus")
	}
	rate := float64(upgraded) / float64(upgraded+maybes)
	// Baseline as of the corpus seeded with guarded_doall.c and
	// guarded_stale.c: 2 upgraded diagnostics against 2 Maybe loops.
	const baseline = 0.50
	if rate < baseline {
		t.Errorf("Maybe-to-definite conversion rate %.2f (%d upgraded, %d maybe) below baseline %.2f",
			rate, upgraded, maybes, baseline)
	}
}

// corpusConversion lints the files and counts guard-upgraded diagnostics
// against remaining unproved ("may carry"/stale) warnings.
func corpusConversion(t *testing.T, files []string) (upgraded, maybes int) {
	t.Helper()
	d := NewDriver(nil)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			continue
		}
		diags, err := d.Run(f, prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, diag := range diags {
			switch {
			case diag.UpgradedFromMaybe:
				upgraded++
			case strings.Contains(diag.Message, "may carry a dependence"),
				strings.Contains(diag.Message, "after destructive update"):
				maybes++
			}
		}
	}
	return upgraded, maybes
}
