// Package lint is a pass-based static-analysis driver over the APT stack:
// it turns what the prover, automata, and memory-reference analysis already
// know into source-anchored diagnostics, the way §5 of the paper uses
// deptest's No/Yes/Maybe verdicts to drive parallelization decisions.
//
// A Pass inspects one parsed translation unit through a shared Context and
// reports Diagnostics.  The Driver runs a pass list in order, records
// per-pass telemetry spans and counters, and returns the diagnostics sorted
// by source position.  Five passes ship by default:
//
//	axiom-consistency        contradictory axiom sets (§3.1 axioms)
//	handle-safety            nil/uninitialized dereferences, stale handles
//	invariant-maintenance    §3.4 axiom invalidation at update sites
//	parallelization-legality per-loop DOALL verdicts from deptest (§5)
//	lang-hygiene             undefined fields/structs, dead stores, …
package lint

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/automata"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// Severity ranks a diagnostic.  Only Error severities make aptlint exit
// non-zero.
type Severity int

// Severities, in increasing order.
const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "invalid"
}

// Related is a secondary source location attached to a diagnostic (the
// modification site behind a stale-handle warning, the axiom behind a
// contradiction, …).
type Related struct {
	Pos     lang.Pos
	Message string
}

// Diagnostic is one finding, anchored at a source position.
type Diagnostic struct {
	Pos      lang.Pos
	Severity Severity
	// Category is the reporting pass's name (or "parse" for frontend
	// failures surfaced by the CLI).
	Category string
	Message  string
	Related  []Related
	// Fingerprint is the analysis fingerprint of the top-level declaration
	// the diagnostic belongs to (see fingerprints): the hash of everything
	// that can change this diagnostic — the declaration's canonical AST,
	// the unit's struct declarations and axiom sets, the canonical ASTs of
	// every transitive callee, and the pass schema version.  The
	// incremental driver reuses stored diagnostics exactly when the
	// fingerprint is unchanged.  Zero for diagnostics outside any
	// declaration (parse errors).
	Fingerprint uint64
	// UpgradedFromMaybe marks a verdict the path-sensitivity layer
	// upgraded: without guard analysis the diagnostic would have reported
	// an unproved ("maybe") dependence or hazard.
	UpgradedFromMaybe bool
}

// Pass is one analysis run by the driver.
type Pass interface {
	// Name is the pass's stable identifier, used as the diagnostic category
	// and in telemetry instrument names.
	Name() string
	// Doc is a one-line description for -passes listings.
	Doc() string
	// Run inspects ctx.Prog and reports diagnostics via ctx.Report.  An
	// error aborts the whole lint run (reserved for internal failures;
	// findings about the program are diagnostics, not errors).
	Run(ctx *Context) error
}

// Context carries the unit under analysis and memoizes the expensive
// artifacts passes share: per-function memory-reference analyses and the
// dependence testers built on their axiom sets.
type Context struct {
	// File is the display name of the unit (used only in diagnostics
	// rendering; the driver never touches the filesystem).
	File string
	// Prog is the parsed translation unit.
	Prog *lang.Program
	// Telemetry receives pass spans and counters; nil disables.
	Telemetry *telemetry.Set
	// Workers is the pool width the batched query engine fans dependence
	// queries across (minimum 1).  Widths above 1 keep every verdict
	// deterministic but may vary the proof-search statistics quoted in
	// diagnostics, so the golden-file harness pins 1.
	Workers int
	// OnlyFuncs, when non-nil, restricts function-scoped passes to the
	// named functions; OnlyStructs does the same for struct-scoped passes.
	// The incremental driver sets them to the fingerprint-dirty subset of
	// the unit.  Passes consult them through SkipFunc and SkipStruct.
	OnlyFuncs   map[string]bool
	OnlyStructs map[string]bool
	// Caches, when non-nil, holds dependence testers and batched engines
	// that outlive this run.  Both are keyed by axiom-set ID — pure
	// functions of axiom content — so reusing them across re-parses of
	// edited source is sound, and it carries the engines' proof memos and
	// compiled DFAs from run to run.
	Caches *Caches
	// Preload, when non-nil, preseeds every tester and engine DFA cache
	// built by this context from a compiled automata artifact (aptc), so
	// the first query of each axiom set skips cold compilation.  Purely an
	// optimization: verdicts are identical with or without it.
	Preload *automata.Artifact

	pass     string
	diags    []Diagnostic
	analyses map[string]*analysis.Result
	anErrs   map[string]error
	testers  map[uint64]*core.Tester
	engines  map[uint64]*engine.Engine
	fps      *unitFingerprints
}

// SkipFunc reports whether function-scoped passes must skip the named
// function this run (it is not in the incremental driver's dirty set).
func (c *Context) SkipFunc(name string) bool {
	return c.OnlyFuncs != nil && !c.OnlyFuncs[name]
}

// SkipStruct is SkipFunc for struct-scoped passes.
func (c *Context) SkipStruct(name string) bool {
	return c.OnlyStructs != nil && !c.OnlyStructs[name]
}

// Caches holds the cross-run artifacts of the incremental driver: the
// dependence testers and batched query engines, keyed by axiom-set ID.
// Every verdict they produce depends only on axiom content, never on
// source positions, so a cache hit after a re-parse is exact.  Analysis
// results are deliberately NOT cached across runs: they embed source
// positions, which shift under edits that leave the fingerprint unchanged.
type Caches struct {
	Testers map[uint64]*core.Tester
	Engines map[uint64]*engine.Engine
}

// NewCaches returns an empty cross-run cache set.
func NewCaches() *Caches {
	return &Caches{
		Testers: map[uint64]*core.Tester{},
		Engines: map[uint64]*engine.Engine{},
	}
}

// Report files a diagnostic.  An empty Category is filled with the running
// pass's name.
func (c *Context) Report(d Diagnostic) {
	if d.Category == "" {
		d.Category = c.pass
	}
	c.diags = append(c.diags, d)
}

// Reportf files a related-free diagnostic.
func (c *Context) Reportf(pos lang.Pos, sev Severity, format string, args ...any) {
	c.Report(Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Analysis returns the memoized memory-reference analysis of the named
// function, running it on first use with the full option set (inferred type
// axioms on, loop invariants not assumed — the conservative configuration).
func (c *Context) Analysis(fn string) (*analysis.Result, error) {
	if c.analyses == nil {
		c.analyses = make(map[string]*analysis.Result)
		c.anErrs = make(map[string]error)
	}
	if res, ok := c.analyses[fn]; ok {
		return res, c.anErrs[fn]
	}
	res, err := analysis.Analyze(c.Prog, fn, analysis.Options{
		InferTypeAxioms: true,
		Telemetry:       c.Telemetry,
	})
	c.analyses[fn], c.anErrs[fn] = res, err
	return res, err
}

// Tester returns a memoized dependence tester for the analysis result's
// axiom set (provers and their caches are shared across queries and passes,
// and across runs when a cross-run cache is attached).
func (c *Context) Tester(res *analysis.Result) *core.Tester {
	key := res.Axioms.ID()
	if c.Caches != nil {
		if t, ok := c.Caches.Testers[key]; ok {
			return t
		}
	}
	if c.testers == nil {
		c.testers = make(map[uint64]*core.Tester)
	}
	if t, ok := c.testers[key]; ok {
		return t
	}
	popts := prover.Options{Telemetry: c.Telemetry}
	if c.Preload != nil {
		cache := automata.NewSharedCache(0, 0, 0)
		cache.Preseed(c.Preload)
		popts.DFACache = cache
	}
	t := core.NewTester(res.Axioms, popts)
	c.testers[key] = t
	if c.Caches != nil {
		c.Caches.Testers[key] = t
	}
	return t
}

// Engine returns a memoized batched query engine for the analysis result's
// axiom set.  Passes that generate whole query sets (parallelization
// legality judges every loop-carried pair) answer them through one Batch
// call, sharing compiled DFAs and canonicalized prover verdicts across the
// queries — and across loops and functions with the same axioms.
func (c *Context) Engine(res *analysis.Result) *engine.Engine {
	key := res.Axioms.ID()
	if c.Caches != nil {
		if e, ok := c.Caches.Engines[key]; ok {
			return e
		}
	}
	if c.engines == nil {
		c.engines = make(map[uint64]*engine.Engine)
	}
	if e, ok := c.engines[key]; ok {
		return e
	}
	e := engine.New(res.Axioms, engine.Options{
		Workers:   c.Workers,
		Prover:    prover.Options{Telemetry: c.Telemetry},
		Telemetry: c.Telemetry,
		Preload:   c.Preload,
	})
	c.engines[key] = e
	if c.Caches != nil {
		c.Caches.Engines[key] = e
	}
	return e
}

// Driver runs a fixed pass list over translation units.
type Driver struct {
	passes  []Pass
	tel     *telemetry.Set
	workers int
	preload *automata.Artifact
}

// NewDriver builds a driver over the given passes (DefaultPasses when none
// are given), reporting telemetry through tel (nil disables).
func NewDriver(tel *telemetry.Set, passes ...Pass) *Driver {
	if len(passes) == 0 {
		passes = DefaultPasses()
	}
	return &Driver{passes: passes, tel: tel}
}

// Passes returns the driver's pass list in run order.
func (d *Driver) Passes() []Pass { return d.passes }

// SetWorkers sets the engine pool width for query-batching passes
// (default 1, fully deterministic output).  Returns the driver for
// chaining.
func (d *Driver) SetWorkers(n int) *Driver {
	d.workers = n
	return d
}

// SetPreload attaches a compiled automata artifact (aptc) that preseeds the
// DFA caches of every tester and engine the driver's contexts build.
// Returns the driver for chaining.
func (d *Driver) SetPreload(art *automata.Artifact) *Driver {
	d.preload = art
	return d
}

// Run lints one parsed unit and returns its diagnostics sorted by position.
func (d *Driver) Run(file string, prog *lang.Program) ([]Diagnostic, error) {
	ctx := &Context{File: file, Prog: prog, Telemetry: d.tel, Workers: d.workers, Preload: d.preload}
	return d.RunContext(ctx)
}

// RunContext lints through a caller-built Context (the incremental driver
// sets dirty-set filters and cross-run caches on it) and returns the
// diagnostics sorted by position, each stamped with the fingerprint of the
// declaration it belongs to.
func (d *Driver) RunContext(ctx *Context) ([]Diagnostic, error) {
	file, prog := ctx.File, ctx.Prog
	for _, p := range d.passes {
		sp := d.tel.Begin("lint.pass")
		before := len(ctx.diags)
		ctx.pass = p.Name()
		err := p.Run(ctx)
		n := len(ctx.diags) - before
		d.tel.Counter("lint.pass." + p.Name() + ".diags").Add(int64(n))
		sp.End(
			telemetry.String("pass", p.Name()),
			telemetry.String("file", file),
			telemetry.Int("diags", n),
			telemetry.Bool("ok", err == nil))
		if err != nil {
			return nil, fmt.Errorf("lint: pass %s: %w", p.Name(), err)
		}
	}
	Sort(ctx.diags)
	if ctx.fps == nil {
		ctx.fps = fingerprints(prog)
	}
	ctx.fps.stamp(ctx.diags)
	d.tel.Counter("lint.files").Add(1)
	for _, diag := range ctx.diags {
		d.tel.Counter("lint.diags_" + diag.Severity.String()).Add(1)
	}
	return ctx.diags, nil
}

// Sort orders diagnostics by position, then severity (most severe first),
// then category and message — a deterministic order for golden files.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Category != b.Category {
			return a.Category < b.Category
		}
		return a.Message < b.Message
	})
}

// HasErrors reports whether any diagnostic is Error severity — the aptlint
// exit-status rule.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// DefaultPasses returns the standard pass list in run order.
func DefaultPasses() []Pass {
	return []Pass{
		AxiomConsistency(),
		LangHygiene(),
		HandleSafety(),
		InvariantMaintenance(),
		ParallelizationLegality(),
	}
}

// PassesByName resolves names against DefaultPasses.
func PassesByName(names []string) ([]Pass, error) {
	all := DefaultPasses()
	byName := make(map[string]Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []Pass
	for _, n := range names {
		p, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown pass %q", n)
		}
		out = append(out, p)
	}
	return out, nil
}
