package lint

import (
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/lang"
	"repro/internal/telemetry"
)

func mustLint(t *testing.T, src string, passes ...Pass) []Diagnostic {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	diags, err := NewDriver(nil, passes...).Run("test.c", prog)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return diags
}

func findDiag(diags []Diagnostic, substr string) *Diagnostic {
	for i := range diags {
		if strings.Contains(diags[i].Message, substr) {
			return &diags[i]
		}
	}
	return nil
}

// --- axiom-consistency ---

func TestCheckSetSelfContradiction(t *testing.T) {
	set := axiom.MustParseSet("T", "A1: forall p, p.(l|r) <> p.r")
	diags := CheckSet(set)
	d := findDiag(diags, "self-contradictory")
	if d == nil {
		t.Fatalf("no self-contradiction reported: %v", diags)
	}
	if d.Severity != Error {
		t.Errorf("severity = %v, want Error", d.Severity)
	}
	if !strings.Contains(d.Message, `"r"`) {
		t.Errorf("message lacks the witness word: %q", d.Message)
	}
}

func TestCheckSetEqualityContradiction(t *testing.T) {
	set := axiom.MustParseSet("T", `
		A1: forall p, p.l <> p.r
		E1: forall p, p.l = p.r`)
	diags := CheckSet(set)
	d := findDiag(diags, "contradicts the disjointness axioms")
	if d == nil {
		t.Fatalf("no equality contradiction reported: %v", diags)
	}
	if !strings.Contains(d.Message, "A1") {
		t.Errorf("message does not cite A1: %q", d.Message)
	}
}

func TestCheckSetDuplicate(t *testing.T) {
	set := axiom.MustParseSet("T", `
		A1: forall p, p.l <> p.r
		A2: forall p, p.l <> p.r`)
	d := findDiag(CheckSet(set), "duplicates")
	if d == nil || d.Severity != Info {
		t.Fatalf("duplicate not reported as info: %+v", d)
	}
}

func TestCheckSetConsistent(t *testing.T) {
	// The paper's §3.3 leaf-linked-tree axioms are consistent.
	set := axiom.MustParseSet("LLBinaryTree", `
		A1: forall p, p.L <> p.R
		A2: forall p <> q, p.(L|R) <> q.(L|R)
		A4: forall p, p.(L|R|N)+ <> p.eps`)
	if diags := CheckSet(set); len(diags) != 0 {
		t.Fatalf("consistent set produced diagnostics: %v", diags)
	}
}

// --- lang-hygiene ---

func TestHygieneUndeclaredStructAndField(t *testing.T) {
	diags := mustLint(t, `
struct H { int a; struct M *m; };
int f(struct H *h) { return h->b; }`, LangHygiene())
	if findDiag(diags, "undeclared type struct M") == nil {
		t.Errorf("missing undeclared-struct diagnostic: %v", diags)
	}
	if findDiag(diags, "no field b") == nil {
		t.Errorf("missing unknown-field diagnostic: %v", diags)
	}
}

func TestHygieneDeadStoreAndUnreachable(t *testing.T) {
	diags := mustLint(t, `
int f() {
	int x;
	int y;
	x = 1;
	y = x;
	x = 2;
	return y;
	y = 0;
}`, LangHygiene())
	dead := findDiag(diags, "dead store: value assigned to x")
	if dead == nil || dead.Pos.Line != 7 {
		t.Errorf("want dead store at line 7 (x = 2), got %+v (all: %v)", dead, diags)
	}
	if findDiag(diags, "unreachable") == nil {
		t.Errorf("missing unreachable diagnostic: %v", diags)
	}
}

func TestHygieneLoopBackEdgeKeepsStoreLive(t *testing.T) {
	// The store to s at the end of the body feeds the read at its top via
	// the back-edge: not a dead store.
	diags := mustLint(t, `
struct N { struct N *n; int d; };
int f(struct N *p, int k) {
	int s;
	int i;
	s = 0;
	i = 0;
	while (i < k) {
		i = i + s;
		s = i;
	}
	return i;
}`, LangHygiene())
	if d := findDiag(diags, "dead store: value assigned to s"); d != nil && d.Pos.Line == 10 {
		t.Errorf("in-loop store wrongly flagged dead: %+v", d)
	}
}

// --- handle-safety ---

func TestHandleSafetyNilAndUninit(t *testing.T) {
	diags := mustLint(t, `
struct N { struct N *next; int d; };
int f(struct N *h) {
	struct N *p;
	struct N *q;
	q = NULL;
	p->d = 1;
	q->d = 2;
	return 0;
}`, HandleSafety())
	if d := findDiag(diags, "never-initialized handle p"); d == nil || d.Severity != Error {
		t.Errorf("missing uninit error: %v", diags)
	}
	if d := findDiag(diags, "nil dereference of handle q"); d == nil || d.Severity != Error {
		t.Errorf("missing nil-deref error: %v", diags)
	}
}

func TestHandleSafetyGuardRefinement(t *testing.T) {
	diags := mustLint(t, `
struct N { struct N *next; int d; };
int f(struct N *h) {
	struct N *r;
	r = h->next;
	if (r != NULL) {
		r->d = 1;
	}
	if (h == NULL) {
		h->d = 2;
	}
	return 0;
}`, HandleSafety())
	if d := findDiag(diags, "possibly-nil dereference of handle r"); d != nil {
		t.Errorf("guarded deref wrongly flagged: %+v", d)
	}
	if d := findDiag(diags, "nil dereference of handle h"); d == nil {
		t.Errorf("deref under == NULL guard not flagged: %v", diags)
	}
}

func TestHandleSafetyWhileGuard(t *testing.T) {
	// The canonical list walk: the guard makes p non-nil inside the body,
	// and NULL after the loop.
	diags := mustLint(t, `
struct N { struct N *next; int d; };
int f(struct N *h) {
	struct N *p;
	p = h;
	while (p != NULL) {
		p->d = 1;
		p = p->next;
	}
	p->d = 2;
	return 0;
}`, HandleSafety())
	if d := findDiag(diags, "dereference of handle p"); d == nil || d.Pos.Line != 10 || d.Severity != Error {
		t.Fatalf("want exactly the post-loop nil deref at line 10, got %v", diags)
	}
	for _, d := range diags {
		if d.Pos.Line == 7 {
			t.Errorf("in-loop guarded deref wrongly flagged: %+v", d)
		}
	}
}

func TestHandleSafetyStaleHandle(t *testing.T) {
	diags := mustLint(t, `
struct N { struct N *nx; int d; };
void f(struct N *a) {
	struct N *t;
	t = a->nx;
	if (t != NULL) {
		a->nx = NULL;
		t->d = 1;
	}
}`, HandleSafety())
	d := findDiag(diags, "after destructive update of field nx")
	if d == nil || d.Severity != Warning {
		t.Fatalf("missing stale-handle warning: %v", diags)
	}
	if len(d.Related) == 0 || d.Related[0].Pos.Line != 7 {
		t.Errorf("stale warning lacks the mod-site note: %+v", d)
	}
}

// --- parallelization-legality ---

func TestParLoopDoall(t *testing.T) {
	diags := mustLint(t, `
struct Cell {
	struct Cell *next;
	int v;
	axioms { A1: forall p, p.next+ <> p.eps; }
};
void scale(struct Cell *l) {
	struct Cell *p;
	p = l;
	while (p != NULL) {
		p->v = 2;
		p = p->next;
	}
}`, ParallelizationLegality())
	d := findDiag(diags, "No dependence")
	if d == nil || d.Severity != Info {
		t.Fatalf("missing DOALL verdict: %v", diags)
	}
	if !strings.Contains(d.Message, "DOALL") {
		t.Errorf("verdict does not mention DOALL: %q", d.Message)
	}
}

func TestParLoopInvariantWriteIsError(t *testing.T) {
	diags := mustLint(t, `
struct Acc { struct Acc *next; int sum; int v; };
void accumulate(struct Acc *a, struct Acc *l) {
	while (l != NULL) {
		a->sum = a->sum + l->v;
		l = l->next;
	}
}`, ParallelizationLegality())
	d := findDiag(diags, "provable dependence")
	if d == nil || d.Severity != Error {
		t.Fatalf("missing loop-carried output dependence error: %v", diags)
	}
	if len(d.Related) == 0 || !strings.Contains(d.Related[0].Message, "every iteration writes a->sum") {
		t.Errorf("error lacks the explanation note: %+v", d)
	}
}

func TestParLoopMaybeExplainsProofFailure(t *testing.T) {
	diags := mustLint(t, `
struct Ring { struct Ring *next; int v; };
void bump(struct Ring *s, int k) {
	struct Ring *p;
	int i;
	p = s;
	i = 0;
	while (i < k) {
		p->v = i;
		p = p->next;
		i = i + 1;
	}
}`, ParallelizationLegality())
	d := findDiag(diags, "not proved legal")
	if d == nil || d.Severity != Warning {
		t.Fatalf("missing maybe verdict: %v", diags)
	}
	if len(d.Related) == 0 {
		t.Fatal("maybe verdict has no explanation notes")
	}
	note := d.Related[0].Message
	if !strings.Contains(note, "prover searched") && !strings.Contains(note, "exhausted") {
		t.Errorf("note lacks proof-search stats: %q", note)
	}
}

// --- invariant-maintenance ---

func TestInvariantMaintenance(t *testing.T) {
	diags := mustLint(t, `
struct Node {
	struct Node *next;
	int f;
	axioms { A1: forall p, p.next+ <> p.eps; }
};
void ins(struct Node *pos) {
	struct Node *n;
	struct Node *rest;
	n = malloc(struct Node);
	rest = pos->next;
	n->next = rest;
	pos->next = n;
}`, InvariantMaintenance())
	d := findDiag(diags, "suspends axiom A1")
	if d == nil {
		t.Fatalf("missing §3.4 window diagnostic: %v", diags)
	}
	if findDiag(diags, "axiomcheck -maintain") == nil {
		t.Errorf("missing dynamic-check suggestion: %v", diags)
	}
}

func TestInvariantMaintenanceInLoopIsWarning(t *testing.T) {
	diags := mustLint(t, `
struct Node {
	struct Node *next;
	int f;
	axioms { A1: forall p, p.next+ <> p.eps; }
};
void sever(struct Node *h, int k) {
	int i;
	i = 0;
	while (i < k) {
		h->next = NULL;
		i = i + 1;
	}
}`, InvariantMaintenance())
	d := findDiag(diags, "inside a loop suspends axiom A1")
	if d == nil || d.Severity != Warning {
		t.Fatalf("in-loop update not upgraded to warning: %v", diags)
	}
}

// --- driver ---

func TestDriverSortAndHasErrors(t *testing.T) {
	diags := []Diagnostic{
		{Pos: lang.Pos{Line: 9, Col: 1}, Severity: Info, Message: "b"},
		{Pos: lang.Pos{Line: 2, Col: 5}, Severity: Warning, Message: "a"},
		{Pos: lang.Pos{Line: 2, Col: 5}, Severity: Error, Message: "c"},
	}
	Sort(diags)
	if diags[0].Severity != Error || diags[1].Severity != Warning || diags[2].Pos.Line != 9 {
		t.Fatalf("bad order: %+v", diags)
	}
	if !HasErrors(diags) {
		t.Error("HasErrors = false")
	}
	if HasErrors(diags[1:]) {
		t.Error("HasErrors on error-free slice = true")
	}
}

func TestPassesByName(t *testing.T) {
	ps, err := PassesByName([]string{"handle-safety", "lang-hygiene"})
	if err != nil || len(ps) != 2 || ps[0].Name() != "handle-safety" {
		t.Fatalf("PassesByName: %v %v", ps, err)
	}
	if _, err := PassesByName([]string{"nope"}); err == nil {
		t.Fatal("unknown pass accepted")
	}
}

func TestDriverTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := telemetry.New(reg, nil)
	prog, err := lang.Parse(`
struct N { struct N *next; int d; };
int f(struct N *h) { return h->d; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDriver(tel).Run("t.c", prog); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["lint.files"] != 1 {
		t.Errorf("lint.files = %d, want 1", snap.Counters["lint.files"])
	}
	found := false
	for name := range snap.Counters {
		if strings.HasPrefix(name, "lint.pass.") {
			found = true
		}
	}
	if !found {
		t.Errorf("no per-pass counters in snapshot: %v", snap.Counters)
	}
}
