package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// FileResult pairs a unit's display name with its diagnostics.
type FileResult struct {
	File  string
	Diags []Diagnostic
}

// WriteText renders results in the classic compiler style:
//
//	file:line:col: severity: message [category]
//	    file:line:col: note: related message
func WriteText(w io.Writer, results []FileResult) {
	for _, r := range results {
		for _, d := range r.Diags {
			fmt.Fprintf(w, "%s:%d:%d: %s: %s [%s]\n",
				r.File, d.Pos.Line, d.Pos.Col, d.Severity, d.Message, d.Category)
			for _, rel := range d.Related {
				fmt.Fprintf(w, "    %s:%d:%d: note: %s\n",
					r.File, rel.Pos.Line, rel.Pos.Col, rel.Message)
			}
		}
	}
}

type jsonRelated struct {
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Severity string `json:"severity"`
	Category string `json:"category"`
	Message  string `json:"message"`
	// Fingerprint is the owning declaration's analysis fingerprint in hex
	// (see Diagnostic.Fingerprint); "0000000000000000" outside any
	// declaration.
	Fingerprint string `json:"fingerprint"`
	// UpgradedFromMaybe marks verdicts the path-sensitivity layer turned
	// from unproved into definite.
	UpgradedFromMaybe bool          `json:"upgraded_from_maybe,omitempty"`
	Related           []jsonRelated `json:"related,omitempty"`
}

// WriteJSON renders all results as one JSON array of diagnostic objects.
func WriteJSON(w io.Writer, results []FileResult) error {
	out := []jsonDiagnostic{}
	for _, r := range results {
		for _, d := range r.Diags {
			jd := jsonDiagnostic{
				File:              r.File,
				Line:              d.Pos.Line,
				Col:               d.Pos.Col,
				Severity:          d.Severity.String(),
				Category:          d.Category,
				Message:           d.Message,
				Fingerprint:       fmt.Sprintf("%016x", d.Fingerprint),
				UpgradedFromMaybe: d.UpgradedFromMaybe,
			}
			for _, rel := range d.Related {
				jd.Related = append(jd.Related, jsonRelated{
					Line: rel.Pos.Line, Col: rel.Pos.Col, Message: rel.Message,
				})
			}
			out = append(out, jd)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
