package lint

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/axiom"
	"repro/internal/lang"
)

// invariantMaintenance statically audits structural update sites against the
// structure axioms, the way §3.4 of the paper does: a store to pointer field
// f suspends every axiom constraining f until the programmer restores the
// invariant.  The pass reports which axioms each update invalidates —
// upgraded to a warning inside loops, where the suspended window covers every
// loop-carried dependence test — and points functions that modify axiom
// fields at the dynamic checker (axiomcheck -maintain) for end-to-end
// verification.
type invariantMaintenance struct{}

// InvariantMaintenance returns the invariant-maintenance pass.
func InvariantMaintenance() Pass { return invariantMaintenance{} }

func (invariantMaintenance) Name() string { return "invariant-maintenance" }
func (invariantMaintenance) Doc() string {
	return "axioms invalidated at structural update sites (§3.4 windows)"
}

func (invariantMaintenance) Run(ctx *Context) error {
	sums := analysis.Summarize(ctx.Prog)
	for _, fn := range ctx.Prog.Funcs {
		if ctx.SkipFunc(fn.Name) {
			continue
		}
		res, err := ctx.Analysis(fn.Name)
		if err != nil {
			continue // not analyzable; other passes still cover it
		}
		inLoop := loopPositions(fn.Body)
		for _, m := range res.Mods {
			names := axiomsMentioning(res.Axioms, m.Field)
			if len(names) == 0 {
				continue
			}
			sev := Info
			msg := fmt.Sprintf(
				"structural update of field %s suspends axiom %s until the invariant is restored (§3.4 window)",
				m.Field, strings.Join(names, ", "))
			if inLoop[m.Pos] {
				sev = Warning
				msg = fmt.Sprintf(
					"structural update of field %s inside a loop suspends axiom %s for every loop-carried dependence test (§3.4 window)",
					m.Field, strings.Join(names, ", "))
			}
			ctx.Reportf(m.Pos, sev, "%s", msg)
		}

		// Function-level: if the function's net effect touches axiom fields,
		// suggest verifying it re-establishes the invariants dynamically.
		sum := sums[fn.Name]
		if sum == nil || len(res.Mods) == 0 {
			continue
		}
		var touched []string
		for _, f := range sum.ModifiedFields {
			if len(axiomsMentioning(res.Axioms, f)) > 0 {
				touched = append(touched, f)
			}
		}
		if len(touched) > 0 {
			ctx.Reportf(fn.Pos, Info,
				"function %s modifies axiom-constrained field(s) %s; verify it re-establishes the structure axioms with: axiomcheck -maintain %s -src %s",
				fn.Name, strings.Join(touched, ", "), fn.Name, ctx.File)
		}
	}
	return nil
}

// axiomsMentioning returns the names of axioms constraining the given field.
func axiomsMentioning(set *axiom.Set, field string) []string {
	var out []string
	for _, a := range set.Axioms {
		for _, f := range a.Fields() {
			if f == field {
				out = append(out, a.Name)
				break
			}
		}
	}
	return out
}

// loopPositions marks the positions of statements that execute inside a
// while-loop.
func loopPositions(b *lang.Block) map[lang.Pos]bool {
	out := map[lang.Pos]bool{}
	var walk func(b *lang.Block, inLoop bool)
	walk = func(b *lang.Block, inLoop bool) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			if inLoop {
				out[st.StmtPos()] = true
			}
			switch v := st.(type) {
			case *lang.WhileStmt:
				walk(v.Body, true)
			case *lang.IfStmt:
				walk(v.Then, inLoop)
				walk(v.Else, inLoop)
			case *lang.BlockStmt:
				walk(v.Body, inLoop)
			}
		}
	}
	walk(b, false)
	return out
}
