package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/heap/oracle"
)

// Soundness oracle for the path-sensitivity layer (wired as `make
// race-guards`): every guard-upgraded verdict claims that two accesses lie
// on mutually exclusive paths.  The oracle checks that claim against ground
// truth — the bounded small-heap sweep in internal/heap/oracle enumerates
// every conforming concrete heap shape up to a bound, runs the function
// concretely under every root and boolean input, and asserts that no single
// execution ever reaches both labeled accesses.  Adversarial variants
// (guard variable reassigned between the branches; same-polarity guards)
// must NOT be upgraded, and the oracle demonstrates a concrete run reaching
// both labels — evidence the upgrade would have been unsound had the
// analysis claimed it.

type oracleCase struct {
	name string
	src  string
	fn   string
	// labelA and labelB mark the access pair the guard layer judges.
	labelA, labelB string
	// wantUpgrade: the lint run must (or must not) produce a
	// guard-upgraded diagnostic for this program.
	wantUpgrade bool
	// maxVertices bounds the heap enumeration.
	maxVertices int
}

var oracleCases = []oracleCase{
	{
		// The seeded stale-handle flip: update under fix, use under !fix.
		name: "stale-exclusive",
		src: `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void patch(struct N *h, int fix) {
	struct N *t;
	t = h->next;
	if (t == NULL) {
		return;
	}
	if (fix) {
		U: h->next = t->next;
	}
	if (!fix) {
		S: h->v = t->v;
	}
}
`,
		fn: "patch", labelA: "U", labelB: "S",
		wantUpgrade: true, maxVertices: 3,
	},
	{
		// Reassigning the guard variable between the branches kills the
		// exclusivity: with fix=1 both U and S execute.  The versioned
		// predicate interner must keep this a Maybe.
		name: "stale-reassigned-var",
		src: `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void patch(struct N *h, int fix) {
	struct N *t;
	t = h->next;
	if (t == NULL) {
		return;
	}
	if (fix) {
		U: h->next = t->next;
	}
	fix = 0;
	if (!fix) {
		S: h->v = t->v;
	}
}
`,
		fn: "patch", labelA: "U", labelB: "S",
		wantUpgrade: false, maxVertices: 3,
	},
	{
		// Same-polarity guards are correlated, not exclusive: both branches
		// run whenever fix is set.  No conflict, no upgrade.
		name: "stale-same-polarity",
		src: `
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void patch(struct N *h, int fix) {
	struct N *t;
	t = h->next;
	if (t == NULL) {
		return;
	}
	if (fix) {
		U: h->next = t->next;
	}
	if (fix) {
		S: h->v = t->v;
	}
}
`,
		fn: "patch", labelA: "U", labelB: "S",
		wantUpgrade: false, maxVertices: 3,
	},
	{
		// The seeded DOALL flip: the loop-invariant mode picks exactly one
		// of the two iteration bodies for the whole traversal.
		name: "doall-exclusive",
		src: `
struct Node {
	struct Node *next;
	struct Node *jump;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void sweep(struct Node *h, int mode) {
	struct Node *p;
	struct Node *r;
	int t;
	t = 0;
	p = h;
	while (p != NULL) {
		if (mode) {
			A: p->v = 1;
		} else {
			r = p->jump;
			if (r != NULL) {
				B: t = t + r->v;
			}
		}
		p = p->next;
	}
}
`,
		fn: "sweep", labelA: "A", labelB: "B",
		wantUpgrade: true, maxVertices: 3,
	},
}

func TestGuardUpgradeOracle(t *testing.T) {
	for _, tc := range oracleCases {
		t.Run(tc.name, func(t *testing.T) {
			prog := parse(t, tc.src)

			diags, err := NewDriver(nil).Run(tc.name+".c", prog)
			if err != nil {
				t.Fatal(err)
			}
			upgraded := false
			for _, d := range diags {
				if d.UpgradedFromMaybe {
					upgraded = true
				}
			}
			if upgraded != tc.wantUpgrade {
				t.Fatalf("guard upgrade = %v, want %v; diagnostics:\n%v", upgraded, tc.wantUpgrade, diags)
			}

			sweep, err := oracle.SweepLabels(prog, tc.fn, tc.labelA, tc.labelB, tc.maxVertices)
			if err != nil {
				t.Fatal(err)
			}
			bothReached, conflict := sweep.BothReached, sweep.Conflict
			if tc.wantUpgrade {
				// The upgrade claims mutual exclusivity — no concrete run
				// may reach both labels, and in particular no conflicting
				// access pair may exist.  This is the soundness direction.
				if bothReached {
					t.Errorf("UNSOUND: verdict upgraded to definite, but a concrete run reached both %s and %s", tc.labelA, tc.labelB)
				}
				if conflict {
					t.Errorf("UNSOUND: verdict upgraded to definite, but a concrete run has a conflicting access pair")
				}
			} else if !bothReached {
				// Teeth check: the adversarial variants really do have a
				// path reaching both accesses, so an upgrade here would
				// have been caught by the clause above.
				t.Errorf("adversarial case never reached both %s and %s — the oracle is vacuous for it", tc.labelA, tc.labelB)
			}
		})
	}
}

// TestOracleCorpusUpgradesAreExclusive closes the loop on the seeded
// corpus: the two committed guard-upgrade programs are byte-for-byte the
// sources the oracle sweeps, so the committed goldens are covered by the
// same ground truth.
func TestOracleCorpusUpgradesAreExclusive(t *testing.T) {
	// guarded_stale.c and guarded_doall.c embed the same function bodies as
	// oracleCases[0] and oracleCases[3] modulo the oracle's labels; a quick
	// structural check keeps them from drifting apart silently.
	for _, probe := range []struct{ file, needle string }{
		{"guarded_stale.c", "h->next = t->next;"},
		{"guarded_doall.c", "r = p->jump;"},
	} {
		src := readCorpusFile(t, probe.file)
		if !strings.Contains(src, probe.needle) {
			t.Errorf("%s no longer contains %q — update the oracle cases to match", probe.file, probe.needle)
		}
	}
}

func readCorpusFile(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "lint", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
