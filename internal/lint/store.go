package lint

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
)

// Store is the persisted state of the incremental driver: per-file, the
// fingerprint and diagnostics of every top-level declaration as of the
// last run.  It round-trips through JSON so watch sessions survive process
// restarts (-incr-cache).
type Store struct {
	// Schema guards the on-disk format and the fingerprint schema at once:
	// a loaded store with a different schema is discarded wholesale.
	Schema string                `json:"schema"`
	Files  map[string]*FileState `json:"files"`
}

// FileState is the stored state of one translation unit.
type FileState struct {
	Owners map[string]*OwnerState `json:"owners"`
}

// OwnerState is the stored state of one top-level declaration ("f:name" or
// "s:name"): its fingerprint, the line it started on at store time (reused
// diagnostics are rebased by the delta to the current start line), and the
// diagnostics attributed to it.
type OwnerState struct {
	FP        uint64       `json:"fp"`
	StartLine int          `json:"start_line"`
	Diags     []Diagnostic `json:"diags,omitempty"`
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{Schema: fpSchema, Files: map[string]*FileState{}}
}

// LoadStore reads a store from path.  A missing file or a schema mismatch
// yields a fresh store (both just mean "analyze everything"); only real
// I/O or decode failures are errors.
func LoadStore(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return NewStore(), nil
	}
	if err != nil {
		return nil, err
	}
	var s Store
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	if s.Schema != fpSchema || s.Files == nil {
		return NewStore(), nil
	}
	return &s, nil
}

// Save writes the store to path (via a temp file + rename, so a crashed
// run never leaves a truncated store behind).
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".aptlint-store-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
