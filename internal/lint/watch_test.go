package lint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lang"
)

// TestWatchFirstPassMatchesPlainRun is the byte-identity golden for
// incremental re-emission: the first emission of a watch session must be
// byte-for-byte the output of a plain (non-incremental) run over the same
// files.
func TestWatchFirstPassMatchesPlainRun(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}

	var plain bytes.Buffer
	var results []FileResult
	d := NewDriver(nil)
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		diags, err := d.Run(f, prog)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, FileResult{File: f, Diags: diags})
	}
	WriteText(&plain, results)

	var watched bytes.Buffer
	inc := NewIncremental(NewDriver(nil))
	if _, err := Watch(files, inc, WatchOptions{
		Interval: time.Millisecond,
		Cycles:   1,
		Out:      &watched,
	}); err != nil {
		t.Fatal(err)
	}
	if watched.String() != plain.String() {
		t.Errorf("watch first pass diverges from plain run:\n--- watch ---\n%s--- plain ---\n%s",
			watched.String(), plain.String())
	}
}

// TestWatchDetectsEditsAndReanalyzesIncrementally: an edit to one function
// triggers a re-emission whose only re-analyzed declarations are the dirty
// ones, and the re-emitted output reflects the edit.
func TestWatchDetectsEditsAndReanalyzesIncrementally(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "u.c")
	orig := `
struct N {
	struct N *nx;
	int d;
};

void splice(struct N *a) {
	struct N *t;
	t = a->nx;
	if (t != NULL) {
		a->nx = NULL;
		t->d = 1;
	}
}

void quiet(struct N *a) {
	a->d = 0;
}
`
	if err := os.WriteFile(file, []byte(orig), 0o644); err != nil {
		t.Fatal(err)
	}

	edited := strings.Replace(orig, "a->d = 0;", "a->d = 2;", 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		// Rewrite with a different size so polling sees it regardless of
		// filesystem timestamp granularity.
		os.WriteFile(file, []byte(edited+"\n// edited\n"), 0o644)
	}()

	var out, status bytes.Buffer
	inc := NewIncremental(NewDriver(nil))
	if _, err := Watch([]string{file}, inc, WatchOptions{
		Interval: 10 * time.Millisecond,
		Cycles:   40,
		Out:      &out,
		Status:   &status,
	}); err != nil {
		t.Fatal(err)
	}

	// Two emissions: initial and after the edit.
	warnings := strings.Count(out.String(), "use of handle t after destructive update")
	if warnings != 2 {
		t.Errorf("expected the splice warning in both emissions, saw it %d time(s):\n%s", warnings, out.String())
	}
	// The second run reuses everything except the edited function: the
	// status log must show a re-analysis of 1 declaration.
	if !strings.Contains(status.String(), "re-analyzed 1 declaration(s)") {
		t.Errorf("no incremental re-analysis recorded:\n%s", status.String())
	}
}
