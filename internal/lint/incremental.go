package lint

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/lang"
)

// fpSchema versions the analysis fingerprint.  It covers everything the
// fingerprint does NOT hash explicitly — the pass list, the diagnostic
// wording, the canonical-rendering grammar.  Bump it whenever any of those
// change, and every stored diagnostic is invalidated at once.
const fpSchema = "aptlint-fp-v1"

// unitFingerprints is the per-declaration fingerprint table of one
// translation unit.  A function's fingerprint hashes, via FNV-1a:
//
//   - the schema version above,
//   - the canonical (position-free) rendering of every struct declaration
//     in the unit, including its axiom set — the axiom-set component of the
//     paper's dependence test,
//   - the function's own canonical AST, and
//   - the base fingerprints of every transitive callee, sorted — so an
//     edit inside a callee dirties all of its interprocedural dependents.
//
// Two parses produce equal fingerprints exactly when every input the
// analysis passes consult is unchanged; source positions are excluded, so
// whitespace-only edits keep fingerprints (and reused diagnostics, after
// line rebasing) valid.
type unitFingerprints struct {
	funcs   map[string]uint64
	structs map[string]uint64
	// spans locates each top-level declaration by start line, sorted; a
	// diagnostic belongs to the last declaration starting at or before it.
	spans []declSpan
}

// declSpan is one top-level declaration: its start line, owner key
// ("f:name" for functions, "s:name" for structs) and fingerprint.
type declSpan struct {
	Line  int
	Owner string
	FP    uint64
}

func hashString(h uint64, s string) uint64 {
	f := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(h >> (8 * i))
	}
	f.Write(b[:])
	f.Write([]byte(s))
	return f.Sum64()
}

func hash64(h, v uint64) uint64 {
	return hashString(h, fmt.Sprintf("%016x", v))
}

// fingerprints computes the fingerprint table of a parsed unit.
func fingerprints(prog *lang.Program) *unitFingerprints {
	u := &unitFingerprints{
		funcs:   map[string]uint64{},
		structs: map[string]uint64{},
	}

	// Struct fingerprints, and the unit-wide hash of all of them: any
	// struct or axiom edit can change field resolution, inferred type
	// axioms, and every prover verdict, so it dirties every function.
	names := make([]string, 0, len(prog.Structs))
	for _, s := range prog.Structs {
		u.structs[s.Name] = hashString(hashString(0, fpSchema), lang.CanonStruct(s))
		names = append(names, s.Name)
	}
	sort.Strings(names)
	structsAll := hashString(0, fpSchema)
	for _, n := range names {
		structsAll = hash64(hashString(structsAll, n), u.structs[n])
	}

	// Base fingerprints: schema + all structs + the function's own
	// canonical AST.
	base := make(map[string]uint64, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		base[fn.Name] = hashString(hashString(structsAll, "func"), lang.CanonFunc(fn))
	}

	// Final fingerprints mix in the sorted base fingerprints of every
	// transitive callee (recursion-safe: the reachable set is computed
	// over the call graph, cycles included).
	callees := callGraph(prog)
	for _, fn := range prog.Funcs {
		reach := reachable(fn.Name, callees)
		sort.Strings(reach)
		h := base[fn.Name]
		for _, callee := range reach {
			if bf, ok := base[callee]; ok && callee != fn.Name {
				h = hash64(hashString(h, callee), bf)
			}
		}
		u.funcs[fn.Name] = h
	}

	for _, s := range prog.Structs {
		u.spans = append(u.spans, declSpan{Line: s.Pos.Line, Owner: "s:" + s.Name, FP: u.structs[s.Name]})
	}
	for _, fn := range prog.Funcs {
		u.spans = append(u.spans, declSpan{Line: fn.Pos.Line, Owner: "f:" + fn.Name, FP: u.funcs[fn.Name]})
	}
	sort.Slice(u.spans, func(i, j int) bool { return u.spans[i].Line < u.spans[j].Line })
	return u
}

// callGraph returns each function's direct callees (defined functions only).
func callGraph(prog *lang.Program) map[string][]string {
	defined := map[string]bool{}
	for _, fn := range prog.Funcs {
		defined[fn.Name] = true
	}
	out := map[string][]string{}
	for _, fn := range prog.Funcs {
		seen := map[string]bool{}
		lang.WalkStmts(fn.Body, func(st lang.Stmt) {
			walkStmtExprsLint(st, func(e lang.Expr) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if c, ok := x.(*lang.CallExpr); ok && defined[c.Name] && !seen[c.Name] {
						seen[c.Name] = true
						out[fn.Name] = append(out[fn.Name], c.Name)
					}
				})
			})
		})
		sort.Strings(out[fn.Name])
	}
	return out
}

// walkStmtExprsLint visits the expressions directly attached to one
// statement (WalkStmts already recurses into nested statements).
func walkStmtExprsLint(st lang.Stmt, fn func(lang.Expr)) {
	switch s := st.(type) {
	case *lang.AssignStmt:
		fn(s.LHS)
		fn(s.RHS)
	case *lang.ExprStmt:
		fn(s.X)
	case *lang.IfStmt:
		fn(s.Cond)
	case *lang.WhileStmt:
		fn(s.Cond)
	case *lang.ReturnStmt:
		if s.Value != nil {
			fn(s.Value)
		}
	}
}

// reachable returns every function reachable from start through the call
// graph, excluding functions with no edges recorded.
func reachable(start string, g map[string][]string) []string {
	seen := map[string]bool{}
	var out []string
	var visit func(string)
	visit = func(n string) {
		for _, c := range g[n] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
				visit(c)
			}
		}
	}
	visit(start)
	return out
}

// ownerAt returns the declaration owning the given source line.
func (u *unitFingerprints) ownerAt(line int) (declSpan, bool) {
	idx := sort.Search(len(u.spans), func(i int) bool { return u.spans[i].Line > line }) - 1
	if idx < 0 {
		return declSpan{}, false
	}
	return u.spans[idx], true
}

// stamp assigns each diagnostic the fingerprint of its owning declaration.
func (u *unitFingerprints) stamp(diags []Diagnostic) {
	for i := range diags {
		if sp, ok := u.ownerAt(diags[i].Pos.Line); ok {
			diags[i].Fingerprint = sp.FP
		}
	}
}

// RunStats reports what one incremental run actually did.
type RunStats struct {
	// Analyzed and Reused count top-level declarations: Analyzed were
	// fingerprint-dirty and re-linted, Reused kept their stored
	// diagnostics (line-rebased).
	Analyzed int
	Reused   int
	// Diags counts the merged diagnostics returned.
	Diags int
}

// IncrementalDriver runs a Driver incrementally: per-declaration
// fingerprints decide what to re-analyze, a Store carries fingerprints and
// diagnostics between runs, and shared Caches carry proof memos and
// compiled DFAs between runs.
type IncrementalDriver struct {
	Driver *Driver
	Store  *Store
	Caches *Caches
}

// NewIncremental wraps a driver with a fresh store and cache set.
func NewIncremental(d *Driver) *IncrementalDriver {
	return &IncrementalDriver{Driver: d, Store: NewStore(), Caches: NewCaches()}
}

// Run incrementally lints one parsed unit: declarations whose fingerprint
// matches the store reuse their stored diagnostics (rebased to their new
// start lines); everything else — edited declarations, their transitive
// callers, and declarations of edited structs — is re-analyzed.  The store
// entry for the file is replaced with the merged result.
func (inc *IncrementalDriver) Run(file string, prog *lang.Program) ([]Diagnostic, RunStats, error) {
	fps := fingerprints(prog)
	prev := inc.Store.Files[file]

	var stats RunStats
	ctx := &Context{
		File: file, Prog: prog,
		Telemetry: inc.Driver.tel, Workers: inc.Driver.workers,
		Caches: inc.Caches, Preload: inc.Driver.preload, fps: fps,
	}
	var reused []Diagnostic
	if prev == nil {
		// First sight of the file: everything is dirty, no filters.
		stats.Analyzed = len(fps.spans)
	} else {
		ctx.OnlyFuncs = map[string]bool{}
		ctx.OnlyStructs = map[string]bool{}
		for _, sp := range fps.spans {
			old, ok := prev.Owners[sp.Owner]
			if ok && old.FP == sp.FP {
				stats.Reused++
				reused = append(reused, rebase(old.Diags, sp.Line-old.StartLine)...)
				continue
			}
			stats.Analyzed++
			if sp.Owner[0] == 'f' {
				ctx.OnlyFuncs[sp.Owner[2:]] = true
			} else {
				ctx.OnlyStructs[sp.Owner[2:]] = true
			}
		}
	}

	diags, err := inc.Driver.RunContext(ctx)
	if err != nil {
		return nil, stats, err
	}
	diags = append(diags, reused...)
	Sort(diags)
	stats.Diags = len(diags)

	// Rebuild the store entry from the merged result.
	state := &FileState{Owners: map[string]*OwnerState{}}
	for _, sp := range fps.spans {
		state.Owners[sp.Owner] = &OwnerState{FP: sp.FP, StartLine: sp.Line}
	}
	for _, d := range diags {
		if sp, ok := fps.ownerAt(d.Pos.Line); ok {
			os := state.Owners[sp.Owner]
			os.Diags = append(os.Diags, d)
		}
	}
	inc.Store.Files[file] = state
	return diags, stats, nil
}

// rebase shifts stored diagnostics by the line delta between the owning
// declaration's old and new start lines.  The fingerprint matching that
// allowed reuse guarantees the declaration's canonical AST is unchanged, so
// every position inside it shifts uniformly.
func rebase(diags []Diagnostic, delta int) []Diagnostic {
	if delta == 0 {
		return append([]Diagnostic(nil), diags...)
	}
	out := make([]Diagnostic, len(diags))
	for i, d := range diags {
		d.Pos.Line += delta
		if len(d.Related) > 0 {
			rel := make([]Related, len(d.Related))
			for j, r := range d.Related {
				r.Pos.Line += delta
				rel[j] = r
			}
			d.Related = rel
		}
		out[i] = d
	}
	return out
}
