package lint

import (
	"repro/internal/lang"
)

// langHygiene reports frontend-level problems the parser deliberately lets
// through: references to undeclared struct types and fields, stores that no
// later statement can observe, and statements no execution can reach.
type langHygiene struct{}

// LangHygiene returns the language-hygiene pass.
func LangHygiene() Pass { return langHygiene{} }

func (langHygiene) Name() string { return "lang-hygiene" }
func (langHygiene) Doc() string {
	return "undeclared structs/fields, dead stores, unreachable statements"
}

func (langHygiene) Run(ctx *Context) error {
	checkStructRefs(ctx)
	for _, fn := range ctx.Prog.Funcs {
		if ctx.SkipFunc(fn.Name) {
			continue
		}
		h := &hygiene{ctx: ctx, fn: fn, types: map[string]lang.Type{}}
		for _, p := range fn.Params {
			h.types[p.Name] = p.Type
		}
		h.block(fn.Body)
		h.deadStores()
	}
	return nil
}

// checkStructRefs verifies every struct type mentioned in a declaration is
// itself declared.
func checkStructRefs(ctx *Context) {
	check := func(t lang.Type, pos lang.Pos, what string) {
		if t.IsStruct && ctx.Prog.Struct(t.Base) == nil {
			ctx.Reportf(pos, Error, "%s has undeclared type struct %s", what, t.Base)
		}
	}
	for _, s := range ctx.Prog.Structs {
		if ctx.SkipStruct(s.Name) {
			continue
		}
		for _, f := range s.Fields {
			check(f.Type, f.Pos, "field "+s.Name+"."+f.Name)
		}
	}
	for _, fn := range ctx.Prog.Funcs {
		if ctx.SkipFunc(fn.Name) {
			continue
		}
		for _, p := range fn.Params {
			check(p.Type, fn.Pos, "parameter "+p.Name+" of "+fn.Name)
		}
		lang.WalkStmts(fn.Body, func(st lang.Stmt) {
			if d, ok := st.(*lang.DeclStmt); ok {
				for _, it := range d.Items {
					check(it.Type, d.StmtPos(), "variable "+it.Name)
				}
			}
		})
	}
}

// varEvent is one read of or store to a local variable, in source order.
type varEvent struct {
	pos     lang.Pos
	isStore bool
	// loops identifies the while-loops enclosing the event, outermost first
	// (loop back-edges make later-in-source reads reachable from earlier
	// stores within the same loop).
	loops []*lang.WhileStmt
}

type hygiene struct {
	ctx   *Context
	fn    *lang.FuncDecl
	types map[string]lang.Type
	// events collects per-variable reads and stores for dead-store analysis.
	events map[string][]varEvent
	// escaped vars had their address taken; their stores are never dead.
	escaped map[string]bool
	loops   []*lang.WhileStmt
}

// block walks a block, reporting the first statement of each dead region,
// and reports whether its last reachable statement terminates control flow.
func (h *hygiene) block(b *lang.Block) bool {
	if b == nil {
		return false
	}
	terminated := false
	for _, st := range b.Stmts {
		if terminated {
			h.ctx.Reportf(st.StmtPos(), Warning, "unreachable statement")
		}
		terminated = h.stmt(st)
	}
	return terminated
}

// stmt checks one statement and reports whether control cannot flow past it.
func (h *hygiene) stmt(st lang.Stmt) (terminates bool) {
	switch s := st.(type) {
	case *lang.DeclStmt:
		for _, it := range s.Items {
			h.types[it.Name] = it.Type
		}
	case *lang.AssignStmt:
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			h.record(lhs.Name, lhs.Pos, true)
		case *lang.FieldAccess:
			h.fieldAccess(lhs)
			h.record(lhs.Base, lhs.Pos, false)
		case *lang.DerefExpr:
			h.record(lhs.Name, lhs.ExprPos(), false)
		}
		h.expr(s.RHS)
	case *lang.ExprStmt:
		h.expr(s.X)
	case *lang.WhileStmt:
		h.expr(s.Cond)
		h.loops = append(h.loops, s)
		h.block(s.Body)
		h.loops = h.loops[:len(h.loops)-1]
		return constTrue(s.Cond)
	case *lang.IfStmt:
		h.expr(s.Cond)
		thenEnds := h.block(s.Then)
		elseEnds := s.Else != nil && h.block(s.Else)
		return thenEnds && elseEnds
	case *lang.ReturnStmt:
		h.expr(s.Value)
		return true
	case *lang.BlockStmt:
		h.block(s.Body)
	}
	return false
}

func (h *hygiene) expr(e lang.Expr) {
	lang.WalkExprs(e, func(x lang.Expr) {
		switch v := x.(type) {
		case *lang.Ident:
			h.record(v.Name, v.Pos, false)
		case *lang.FieldAccess:
			h.fieldAccess(v)
			h.record(v.Base, v.Pos, false)
		case *lang.AddrExpr:
			if h.escaped == nil {
				h.escaped = map[string]bool{}
			}
			h.escaped[v.Name] = true
		case *lang.DerefExpr:
			h.record(v.Name, v.ExprPos(), false)
		}
	})
}

// fieldAccess checks base->field against the base variable's declared type.
func (h *hygiene) fieldAccess(fa *lang.FieldAccess) {
	t, ok := h.types[fa.Base]
	if !ok || !t.IsStruct {
		return
	}
	sd := h.ctx.Prog.Struct(t.Base)
	if sd == nil {
		return // undeclared struct already reported at the declaration
	}
	if sd.Field(fa.Field) == nil {
		h.ctx.Reportf(fa.Pos, Error, "struct %s has no field %s", sd.Name, fa.Field)
	}
}

func (h *hygiene) record(name string, pos lang.Pos, isStore bool) {
	if h.events == nil {
		h.events = map[string][]varEvent{}
	}
	loops := append([]*lang.WhileStmt(nil), h.loops...)
	h.events[name] = append(h.events[name], varEvent{pos: pos, isStore: isStore, loops: loops})
}

// deadStores flags stores no later read can observe.  A store inside a loop
// also feeds reads anywhere in that loop via the back-edge, so only reads
// outside every shared loop must strictly follow it.
func (h *hygiene) deadStores() {
	for name, evs := range h.events {
		if h.escaped[name] {
			continue
		}
		for i, ev := range evs {
			if !ev.isStore {
				continue
			}
			live := false
			for j, other := range evs {
				if j == i || other.isStore {
					continue
				}
				if posLess(ev.pos, other.pos) || sharesLoop(ev.loops, other.loops) {
					live = true
					break
				}
			}
			if !live {
				h.ctx.Reportf(ev.pos, Warning,
					"dead store: value assigned to %s is never read", name)
			}
		}
	}
}

func posLess(a, b lang.Pos) bool {
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// sharesLoop reports whether the two events sit inside a common while-loop.
func sharesLoop(a, b []*lang.WhileStmt) bool {
	for _, la := range a {
		for _, lb := range b {
			if la == lb {
				return true
			}
		}
	}
	return false
}

// constTrue reports whether a loop condition is a non-zero literal, i.e.
// while(1): control never flows past the loop.
func constTrue(e lang.Expr) bool {
	n, ok := e.(*lang.NumLit)
	return ok && n.Text != "0"
}
