package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestWriteBenchIncrJSON measures the incremental driver's payoff and
// writes BENCH_incr.json (run via `make bench-incr`, which sets
// BENCH_INCR_JSON to the output path; skipped otherwise).  The acceptance
// thresholds are asserted here: re-analysis after a one-line edit must be
// at least 10x faster than the cold run, and the Maybe-to-definite
// conversion rate on the seeded lint corpus must stay at or above the
// committed baseline (the precision-regression gate, shared with
// TestConversionRateGate).

type benchIncr struct {
	Decls          int     `json:"decls"`
	ColdMs         float64 `json:"cold_ms"`
	IncrMs         float64 `json:"incr_ms"`
	Speedup        float64 `json:"speedup"`
	AnalyzedCold   int     `json:"analyzed_cold"`
	AnalyzedIncr   int     `json:"analyzed_incr"`
	ReusedIncr     int     `json:"reused_incr"`
	Upgraded       int     `json:"upgraded"`
	Maybes         int     `json:"maybes"`
	ConversionRate float64 `json:"conversion_rate"`
}

// benchIncrSrc builds a unit of n independent functions, each with a loop
// the parallelization pass must prove independent — enough §3–§4 prover
// work per declaration that the cold run has real weight.
func benchIncrSrc(n int) string {
	var b strings.Builder
	b.WriteString(`
struct Cell {
	struct Cell *next;
	int v;
	int w;
	int u;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};
`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `
void walk%d(struct Cell *h) {
	struct Cell *p;
	p = h;
	while (p != NULL) {
		p->v = %d;
		p->w = p->v + 1;
		p->u = p->w + p->v;
		p = p->next;
	}
}
`, i, i)
	}
	return b.String()
}

func TestWriteBenchIncrJSON(t *testing.T) {
	path := os.Getenv("BENCH_INCR_JSON")
	if path == "" {
		t.Skip("set BENCH_INCR_JSON to an output path (make bench-incr) to run")
	}

	const nFuncs = 64
	src := benchIncrSrc(nFuncs)
	edited := strings.Replace(src, "p->v = 7;", "p->v = 77;", 1)
	if edited == src {
		t.Fatal("edit did not apply")
	}

	// Best-of-3 for both sides to keep scheduler noise out of the ratio.
	var coldBest, incrBest time.Duration
	var coldStats, incrStats RunStats
	for trial := 0; trial < 3; trial++ {
		inc := NewIncremental(NewDriver(nil))
		start := time.Now()
		_, cs, err := inc.Run("bench.c", parse(t, src))
		cold := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		start = time.Now()
		_, is, err := inc.Run("bench.c", parse(t, edited))
		incr := time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 || cold < coldBest {
			coldBest, coldStats = cold, cs
		}
		if trial == 0 || incr < incrBest {
			incrBest, incrStats = incr, is
		}
	}
	if incrStats.Analyzed != 1 {
		t.Fatalf("one-line edit re-analyzed %d declarations, want 1", incrStats.Analyzed)
	}

	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "lint", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	upgraded, maybes := corpusConversion(t, files)

	report := benchIncr{
		Decls:        nFuncs + 1,
		ColdMs:       float64(coldBest.Microseconds()) / 1000,
		IncrMs:       float64(incrBest.Microseconds()) / 1000,
		Speedup:      float64(coldBest) / float64(incrBest),
		AnalyzedCold: coldStats.Analyzed,
		AnalyzedIncr: incrStats.Analyzed,
		ReusedIncr:   incrStats.Reused,
		Upgraded:     upgraded,
		Maybes:       maybes,
	}
	if upgraded+maybes > 0 {
		report.ConversionRate = float64(upgraded) / float64(upgraded+maybes)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("cold %.2fms, incremental %.2fms, speedup %.1fx, conversion %.2f",
		report.ColdMs, report.IncrMs, report.Speedup, report.ConversionRate)

	if report.Speedup < 10 {
		t.Errorf("incremental re-analysis speedup %.1fx, want >= 10x", report.Speedup)
	}
	const baseline = 0.50
	if report.ConversionRate < baseline {
		t.Errorf("conversion rate %.2f below baseline %.2f", report.ConversionRate, baseline)
	}
}
