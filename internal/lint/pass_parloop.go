package lint

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lang"
	"repro/internal/prover"
)

// parLegality issues a DOALL verdict per while-loop, the paper's §5 use of
// the dependence test: every loop-carried query answered No makes the loop's
// iterations independent and the loop parallelizable.  A provable dependence
// is an error (parallelizing would be wrong); an unproved one is a warning
// whose related notes explain which suffix-split/induction attempt failed,
// quoting the proof-search statistics from the telemetry layer.
type parLegality struct{}

// ParallelizationLegality returns the parallelization-legality pass.
func ParallelizationLegality() Pass { return parLegality{} }

func (parLegality) Name() string { return "parallelization-legality" }
func (parLegality) Doc() string {
	return "per-loop DOALL verdicts from the dependence test (§5)"
}

func (parLegality) Run(ctx *Context) error {
	for _, fn := range ctx.Prog.Funcs {
		if ctx.SkipFunc(fn.Name) {
			continue
		}
		res, err := ctx.Analysis(fn.Name)
		if err != nil {
			ctx.Reportf(fn.Pos, Info,
				"function %s not analyzable (%v); no parallelization verdicts", fn.Name, err)
			continue
		}
		loops := collectLoops(fn.Body)
		if len(loops) == 0 {
			continue
		}
		eng := ctx.Engine(res)
		byLoop := attributeAccesses(res.Accesses, loops)
		for _, lp := range loops {
			judgeLoop(ctx, res, eng, lp, byLoop[lp.stmt])
		}
	}
	return nil
}

// loopInfo is one while-loop with the source positions its body spans.
type loopInfo struct {
	stmt *lang.WhileStmt
	// positions holds every statement and expression position in the body,
	// including nested loops (accesses are matched against it).
	positions map[lang.Pos]bool
	// assigned lists variables the body assigns (for the loop-invariant
	// write special case).
	assigned map[string]bool
	depth    int
}

// collectLoops returns every while-loop in the block, outermost first.
func collectLoops(b *lang.Block) []*loopInfo {
	var out []*loopInfo
	var walk func(b *lang.Block, depth int)
	walk = func(b *lang.Block, depth int) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			switch v := st.(type) {
			case *lang.WhileStmt:
				lp := &loopInfo{stmt: v, positions: map[lang.Pos]bool{}, assigned: map[string]bool{}, depth: depth}
				lang.WalkStmts(v.Body, func(s lang.Stmt) {
					lp.positions[s.StmtPos()] = true
					collectExprPositions(s, lp.positions)
					if a, ok := s.(*lang.AssignStmt); ok {
						if id, ok := a.LHS.(*lang.Ident); ok {
							lp.assigned[id.Name] = true
						}
					}
				})
				out = append(out, lp)
				walk(v.Body, depth+1)
			case *lang.IfStmt:
				walk(v.Then, depth)
				walk(v.Else, depth)
			case *lang.BlockStmt:
				walk(v.Body, depth)
			}
		}
	}
	walk(b, 0)
	return out
}

func collectExprPositions(st lang.Stmt, into map[lang.Pos]bool) {
	record := func(e lang.Expr) {
		lang.WalkExprs(e, func(x lang.Expr) { into[x.ExprPos()] = true })
	}
	switch s := st.(type) {
	case *lang.AssignStmt:
		record(s.LHS)
		record(s.RHS)
	case *lang.ExprStmt:
		record(s.X)
	case *lang.WhileStmt:
		record(s.Cond)
	case *lang.IfStmt:
		record(s.Cond)
	case *lang.ReturnStmt:
		record(s.Value)
	}
}

// attributeAccesses assigns each recorded heap access to the innermost loop
// whose body contains its position.
func attributeAccesses(accs []analysis.Access, loops []*loopInfo) map[*lang.WhileStmt][]analysis.Access {
	out := map[*lang.WhileStmt][]analysis.Access{}
	for _, a := range accs {
		var best *loopInfo
		for _, lp := range loops {
			if lp.positions[a.Pos] && (best == nil || lp.depth > best.depth) {
				best = lp
			}
		}
		if best != nil {
			out[best.stmt] = append(out[best.stmt], a)
		}
	}
	return out
}

// judgeLoop collects every loop-carried dependence query for one loop,
// answers the whole set in a single engine.Batch call (sharing compiled
// DFAs and canonicalized prover verdicts — symmetric pairs ⟨a,b⟩/⟨b,a⟩
// cost one proof search), and emits its DOALL verdict.  Batch results are
// index-aligned with the submitted queries, so the diagnostics come out in
// the same deterministic order as the old query-at-a-time loop.
func judgeLoop(ctx *Context, res *analysis.Result, eng *engine.Engine, lp *loopInfo, accs []analysis.Access) {
	pos := lp.stmt.StmtPos()
	hasWrite := false
	for _, a := range accs {
		if a.IsWrite {
			hasWrite = true
		}
	}
	if !hasWrite {
		if len(accs) > 0 {
			ctx.Reportf(pos, Info,
				"loop body only reads the structure: No dependence between iterations; DOALL parallelization is legal")
		}
		return
	}

	type judged struct {
		q   core.Query
		out core.Outcome
		a   analysis.Access
	}
	// A slot is one verdict in the deterministic order the old
	// query-at-a-time loop produced: most slots are answered by the batch
	// (batchIdx ≥ 0), a few are pre-judged during collection.
	type slot struct {
		q core.Query
		a analysis.Access
		// invariantWrite marks the loop-invariant-write special case: the
		// verdict is a certain output dependence regardless of the prover,
		// so the outcome goes straight to the errors with its own reason.
		invariantWrite bool
		batchIdx       int
		pre            core.Outcome
	}
	var slots []slot
	var batch []core.Query
	add := func(s slot) {
		s.batchIdx = len(batch)
		batch = append(batch, s.q)
		slots = append(slots, s)
	}

	for i, a := range accs {
		for _, q := range res.LoopCarriedSelf(a) {
			add(slot{q: q, a: a})
		}
		for j, b := range accs {
			if i == j {
				continue
			}
			for _, q := range res.LoopCarriedPair(a, b) {
				add(slot{q: q, a: a})
			}
		}
		// Loop-invariant write: the induction analysis found no per-iteration
		// advance for this write.  If its variable really is fixed in the
		// body, every iteration writes the same vertex — a certain
		// loop-carried output dependence.  Otherwise the pointer moves in a
		// way the analysis cannot express, and the only sound verdict is
		// Maybe.
		if a.IsWrite && len(a.IterDeltas) == 0 {
			if h, ok := invariantHandle(a); ok && !lp.assigned[a.Var] {
				q := core.Query{
					S: core.Access{Handle: h, Path: a.Paths[h], Field: a.Field, Type: a.Type, IsWrite: true},
					T: core.Access{Handle: h, Path: a.Paths[h], Field: a.Field, Type: a.Type, IsWrite: true},
				}
				add(slot{q: q, a: a, invariantWrite: true})
			} else {
				slots = append(slots, slot{a: a, batchIdx: -1, pre: core.Outcome{
					Result: core.Maybe,
					Reason: fmt.Sprintf("write %s->%s moves in a way the induction analysis cannot express", a.Var, a.Field),
				}})
			}
		}
	}

	outs := eng.Batch(context.Background(), batch)
	var yes, maybe, upgraded []judged
	proved := 0
	for _, s := range slots {
		out := s.pre
		if s.batchIdx >= 0 {
			out = outs[s.batchIdx]
		}
		switch {
		case s.invariantWrite:
			out.Reason = fmt.Sprintf("every iteration writes %s->%s", s.a.Var, s.a.Field)
			yes = append(yes, judged{s.q, out, s.a})
		case out.Result == core.No:
			proved++
			// A guard-upgraded No would have been a Maybe without the
			// path-sensitivity layer: surface which guards discharged it.
			if out.GuardUpgraded {
				upgraded = append(upgraded, judged{s.q, out, s.a})
			}
		case out.Result == core.Yes:
			yes = append(yes, judged{s.q, out, s.a})
		default:
			maybe = append(maybe, judged{s.q, out, s.a})
		}
	}

	switch {
	case len(yes) > 0:
		d := Diagnostic{Pos: pos, Severity: Error,
			Message: "loop carries a provable dependence: DOALL parallelization is illegal"}
		for _, j := range yes {
			d.Related = append(d.Related, Related{Pos: j.a.Pos,
				Message: fmt.Sprintf("%s: %s", describeQuery(j.q), j.out.Reason)})
		}
		ctx.Report(d)
	case len(maybe) > 0:
		d := Diagnostic{Pos: pos, Severity: Warning,
			Message: "loop may carry a dependence: DOALL parallelization not proved legal"}
		for _, j := range maybe {
			d.Related = append(d.Related, Related{Pos: j.a.Pos, Message: explainMaybe(j.q, j.out, j.a)})
		}
		ctx.Report(d)
	case proved > 0 && len(upgraded) > 0:
		d := Diagnostic{Pos: pos, Severity: Info,
			Message: fmt.Sprintf(
				"No dependence between iterations (%d %s proved independent, %d by branch-guard analysis): DOALL parallelization is legal",
				proved, plural(proved, "query", "queries"), len(upgraded)),
			UpgradedFromMaybe: true}
		for _, j := range upgraded {
			d.Related = append(d.Related, Related{Pos: j.a.Pos,
				Message: fmt.Sprintf("%s: %s", describeQuery(j.q), j.out.Reason)})
		}
		ctx.Report(d)
	case proved > 0:
		ctx.Reportf(pos, Info,
			"No dependence between iterations (%d %s proved independent): DOALL parallelization is legal",
			proved, plural(proved, "query", "queries"))
	}
}

// invariantHandle picks a deterministic non-iteration handle for a
// loop-invariant access.
func invariantHandle(a analysis.Access) (string, bool) {
	best := ""
	for h := range a.Paths {
		if strings.HasPrefix(h, "_it") {
			continue
		}
		if best == "" || h < best {
			best = h
		}
	}
	return best, best != ""
}

// describeQuery renders a loop-carried query compactly for related notes.
func describeQuery(q core.Query) string {
	return fmt.Sprintf("%s vs %s", q.S, q.T)
}

// explainMaybe says which proof attempt failed and how hard the prover
// tried, so the user can tell "not provable from these axioms" apart from
// "budget too small" (§5's suffix splitting and Kleene induction live inside
// these counts).
func explainMaybe(q core.Query, out core.Outcome, a analysis.Access) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s", describeQuery(q), out.Reason)
	if pf := out.Proof; pf != nil {
		switch pf.Result {
		case prover.Exhausted:
			fmt.Fprintf(&b, "; proof search exhausted its budget (%d goals, %d inductions, peak depth %d, %d steps) — a larger budget might still prove independence",
				pf.Stats.ProveCalls, pf.Stats.Inductions, pf.Stats.PeakDepth, pf.Stats.StepsUsed)
		case prover.NotProved:
			fmt.Fprintf(&b, "; prover searched %d goals (%d axiom applications, %d inductions, peak depth %d) without finding a derivation — the axioms likely do not imply independence",
				pf.Stats.ProveCalls, pf.Stats.DirectChecks, pf.Stats.Inductions, pf.Stats.PeakDepth)
		}
	}
	if len(a.LoopModFields) > 0 {
		fmt.Fprintf(&b, "; note: axioms constraining %s are suspended by in-loop structural updates (§3.4)",
			strings.Join(a.LoopModFields, ", "))
	}
	return b.String()
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
