package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/prover"
)

// axiomConsistency detects contradictory axiom sets with the automata
// product/emptiness kernels and the theorem prover itself:
//
//   - a same-source disjointness axiom ∀p, p.RE1 <> p.RE2 whose languages
//     intersect is self-contradictory: a shared word w makes it assert
//     p.w <> p.w, i.e. a vertex differs from itself;
//   - an equality axiom ∀p, p.RE1 = p.RE2 contradicts the disjointness
//     axioms when they prove p.RE1 <> p.RE2 (the type-1/type-2 vs type-3
//     clash the paper's axiom forms admit, §3.1);
//   - a side denoting the empty language makes an axiom vacuous, and
//     duplicated axioms are redundant — both reported as lesser findings.
type axiomConsistency struct{}

// AxiomConsistency returns the axiom-consistency pass.
func AxiomConsistency() Pass { return axiomConsistency{} }

func (axiomConsistency) Name() string { return "axiom-consistency" }
func (axiomConsistency) Doc() string {
	return "detect contradictory, vacuous, or duplicated aliasing axioms (§3.1)"
}

func (axiomConsistency) Run(ctx *Context) error {
	for _, s := range ctx.Prog.Structs {
		if s.Axioms == nil || ctx.SkipStruct(s.Name) {
			continue
		}
		for _, d := range CheckSet(s.Axioms) {
			d.Pos = s.Pos
			d.Message = fmt.Sprintf("struct %s: %s", s.Name, d.Message)
			ctx.Report(d)
		}
	}
	return nil
}

// CheckSet statically checks one axiom set for internal consistency and
// returns findings with unset positions (callers anchor them).  It is
// exported for axiomcheck, which refuses to model-check a set that is
// already contradictory on paper.
func CheckSet(set *axiom.Set) []Diagnostic {
	var out []Diagnostic
	report := func(sev Severity, format string, args ...any) {
		out = append(out, Diagnostic{
			Severity: sev,
			Category: "axiom-consistency",
			Message:  fmt.Sprintf(format, args...),
		})
	}

	alpha := automata.NewAlphabet(set.Fields()...)
	cache := automata.NewCache(0)
	seen := make(map[string]string, set.Len())
	empty := make(map[int][2]bool, set.Len()) // axiom index -> per-side emptiness
	for i, a := range set.Axioms {
		fp := fmt.Sprintf("%d\x01%s\x01%s", a.Form, a.RE1, a.RE2)
		if prev, ok := seen[fp]; ok {
			report(Info, "axiom %s duplicates %s (%v)", a.Name, prev, a)
		} else {
			seen[fp] = a.Name
		}
		d1, err1 := cache.DFA(a.RE1, alpha)
		d2, err2 := cache.DFA(a.RE2, alpha)
		if err1 != nil || err2 != nil {
			report(Warning, "axiom %s: path expression too large to compile; consistency not checked", a.Name)
			continue
		}
		sides := [2]bool{d1.IsEmpty(), d2.IsEmpty()}
		empty[i] = sides
		for j, isEmpty := range sides {
			if isEmpty {
				side := [...]string{"left", "right"}[j]
				report(Warning, "axiom %s: %s side %s denotes the empty language; the axiom is vacuous",
					a.Name, side, [2]string{a.RE1.String(), a.RE2.String()}[j])
			}
		}
		if a.Form == axiom.SameSrcDisjoint && !sides[0] && !sides[1] {
			if w, ok := d1.Intersect(d2).Witness(); ok {
				report(Error,
					"axiom %s is self-contradictory: both sides accept the path %q, so it asserts p.%s <> p.%s — a vertex distinct from itself",
					a.Name, wordString(w), wordString(w), wordString(w))
			}
		}
	}

	// Equality axioms against the disjointness fragment: if the disjointness
	// axioms alone prove ∀p, p.RE1 <> p.RE2 while an equality axiom asserts
	// ∀p, p.RE1 = p.RE2, the set has no model with a vertex carrying RE1.
	equalities := set.ByForm(axiom.SameSrcEqual)
	if len(equalities) == 0 {
		return out
	}
	disj := &axiom.Set{StructName: set.StructName}
	for _, a := range set.Axioms {
		if a.Form != axiom.SameSrcEqual {
			disj.Axioms = append(disj.Axioms, a)
		}
	}
	prv := prover.New(disj, prover.Options{})
	for i, a := range set.Axioms {
		if a.Form != axiom.SameSrcEqual || empty[i][0] || empty[i][1] {
			continue
		}
		if pf := prv.Prove(prover.SameSrc, a.RE1, a.RE2); pf.Result == prover.Proved {
			names := disjointnessNames(pf)
			detail := ""
			if len(names) > 0 {
				detail = " (using " + strings.Join(names, ", ") + ")"
			}
			report(Error,
				"equality axiom %s (%v) contradicts the disjointness axioms: ∀p, p.%s <> p.%s is provable%s",
				a.Name, a, a.RE1, a.RE2, detail)
		}
	}
	return out
}

// disjointnessNames collects the axiom names a proof cites, sorted and
// deduplicated, for the contradiction message.
func disjointnessNames(pf *prover.Proof) []string {
	seen := map[string]bool{}
	var walk func(s *prover.Step)
	walk = func(s *prover.Step) {
		if s == nil {
			return
		}
		for _, by := range []string{s.By, s.ByT1, s.ByT2} {
			if by != "" && !strings.HasPrefix(by, "IH") {
				seen[by] = true
			}
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(pf.Root)
	var out []string
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func wordString(w []string) string {
	if len(w) == 0 {
		return "ε"
	}
	return strings.Join(w, ".")
}
