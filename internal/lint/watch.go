package lint

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/lang"
)

// WatchOptions configures a watch session.
type WatchOptions struct {
	// Interval is the polling period (modification time + size; the
	// portable change signal — no platform watcher dependencies).
	Interval time.Duration
	// Cycles bounds the session: after this many polls the session
	// returns (0 means watch forever).  Tests use small cycle counts.
	Cycles int
	// Out receives the diagnostics; every cycle that re-analyzes anything
	// re-emits the full result set for all watched files, so consumers
	// always see a complete, current picture.  The first emission is
	// byte-identical to a plain (non-watch) run over the same files.
	Out io.Writer
	// Status receives one human-readable line per event (stderr in the
	// CLI); nil discards them.
	Status io.Writer
	// JSON selects machine-readable re-emissions.
	JSON bool
	// StorePath, when non-empty, persists the incremental store there
	// after every emission.
	StorePath string
}

// watchedFile is the per-file polling state.
type watchedFile struct {
	name    string
	modTime time.Time
	size    int64
	result  FileResult
}

// Watch incrementally lints files, then polls them and re-analyzes
// whatever changed — only fingerprint-dirty declarations and their
// interprocedural dependents actually re-run.  Returns whether the most
// recent emission contained error-severity diagnostics.
func Watch(files []string, inc *IncrementalDriver, opts WatchOptions) (bool, error) {
	if opts.Interval <= 0 {
		opts.Interval = 500 * time.Millisecond
	}
	status := func(format string, args ...any) {
		if opts.Status != nil {
			fmt.Fprintf(opts.Status, "aptlint: "+format+"\n", args...)
		}
	}

	watched := make([]*watchedFile, len(files))
	for i, f := range files {
		watched[i] = &watchedFile{name: f}
	}

	lintOne := func(w *watchedFile) RunStats {
		start := time.Now()
		var stats RunStats
		src, err := os.ReadFile(w.name)
		if err != nil {
			status("%s: %v", w.name, err)
			return stats
		}
		prog, err := lang.Parse(string(src))
		if err != nil {
			if pos, ok := lang.ErrPos(err); ok {
				w.result = FileResult{File: w.name, Diags: []Diagnostic{{
					Pos: pos, Severity: Error, Category: "parse", Message: err.Error(),
				}}}
			} else {
				status("%s: %v", w.name, err)
			}
			return stats
		}
		diags, stats, err := inc.Run(w.name, prog)
		if err != nil {
			status("%s: %v", w.name, err)
			return stats
		}
		w.result = FileResult{File: w.name, Diags: diags}
		status("%s: re-analyzed %d declaration(s), reused %d, %d diagnostic(s) in %.1fms",
			w.name, stats.Analyzed, stats.Reused, stats.Diags,
			float64(time.Since(start).Microseconds())/1000)
		return stats
	}

	emit := func() (bool, error) {
		results := make([]FileResult, len(watched))
		for i, w := range watched {
			results[i] = w.result
		}
		if opts.JSON {
			if err := WriteJSON(opts.Out, results); err != nil {
				return false, err
			}
		} else {
			WriteText(opts.Out, results)
		}
		if opts.StorePath != "" {
			if err := inc.Store.Save(opts.StorePath); err != nil {
				return false, err
			}
		}
		hadErrors := false
		for _, r := range results {
			hadErrors = hadErrors || HasErrors(r.Diags)
		}
		return hadErrors, nil
	}

	// Initial pass over everything.
	for _, w := range watched {
		if st, err := os.Stat(w.name); err == nil {
			w.modTime, w.size = st.ModTime(), st.Size()
		}
		lintOne(w)
	}
	hadErrors, err := emit()
	if err != nil {
		return hadErrors, err
	}
	status("watching %d file(s), polling every %s", len(watched), opts.Interval)

	for cycle := 0; opts.Cycles == 0 || cycle < opts.Cycles; cycle++ {
		time.Sleep(opts.Interval)
		changed := false
		for _, w := range watched {
			st, err := os.Stat(w.name)
			if err != nil {
				continue
			}
			if st.ModTime().Equal(w.modTime) && st.Size() == w.size {
				continue
			}
			w.modTime, w.size = st.ModTime(), st.Size()
			lintOne(w)
			changed = true
		}
		if changed {
			if hadErrors, err = emit(); err != nil {
				return hadErrors, err
			}
		}
	}
	return hadErrors, nil
}
