package lint

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/lang"
)

// handleSafety is a forward abstract interpretation of each function over a
// small pointer lattice.  It reports
//
//   - dereferences of handles that are definitely or possibly NULL,
//   - dereferences of handles that were never initialized, and
//   - uses of handles after a destructive update rewrote a pointer field on
//     the access path that produced them (the hazard §3.4's axiom windows
//     exist to contain).
type handleSafety struct{}

// HandleSafety returns the handle-safety pass.
func HandleSafety() Pass { return handleSafety{} }

func (handleSafety) Name() string { return "handle-safety" }
func (handleSafety) Doc() string {
	return "nil/uninitialized handle dereferences, uses after destructive updates"
}

// ptrState is the abstract value of one pointer variable.
type ptrState int

const (
	psValid       ptrState = iota // unknown but assumed usable (params, call results)
	psUninit                      // declared, never assigned
	psNil                         // definitely NULL
	psNonNil                      // definitely not NULL
	psMaybe                       // possibly NULL
	psMaybeUninit                 // initialized on some paths only
)

// varInfo is the per-variable abstract state.
type varInfo struct {
	state     ptrState
	origin    lang.Pos
	originMsg string
	// via is the set of pointer fields traversed to reach this handle's
	// value; a destructive update to any of them makes the handle stale.
	via map[string]bool
	// stale marks a handle whose access path was invalidated by a
	// destructive update after the handle was last computed.
	stale      bool
	stalePos   lang.Pos
	staleField string
	// staleGuards is the branch-guard set the destructive update executed
	// under; a later use under a contradictory guard set lies on a
	// mutually exclusive path and is not actually stale.
	staleGuards guard.Set
}

type handleEnv map[string]varInfo

func (e handleEnv) clone() handleEnv {
	out := make(handleEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func (handleSafety) Run(ctx *Context) error {
	for _, fn := range ctx.Prog.Funcs {
		if ctx.SkipFunc(fn.Name) {
			continue
		}
		w := &handleWalker{
			ctx:       ctx,
			types:     map[string]lang.Type{},
			ver:       guard.NewVersioner(),
			addrTaken: addrTakenVars(fn.Body),
		}
		env := handleEnv{}
		for _, p := range fn.Params {
			w.types[p.Name] = p.Type
			if p.Type.Ptr > 0 {
				env[p.Name] = varInfo{state: psValid}
			}
		}
		w.block(fn.Body, env)
	}
	return nil
}

type handleWalker struct {
	ctx   *Context
	types map[string]lang.Type
	// ver versions guard predicates: a predicate's identity is (canonical
	// condition, version), and every assignment, field store, or call
	// bumps the versions it may have changed, so two guard references
	// conflict only when their shared value provably never changed in
	// between.
	ver    *guard.Versioner
	guards []guard.Ref
	// addrTaken vars can change through aliases; they never form guards.
	addrTaken map[string]bool
	// loopTaints stacks the per-enclosing-loop modification sets: this
	// walker visits a loop body once, so a guard atom on anything the
	// body modifies would wrongly keep one version across iterations —
	// such atoms are skipped (widened to ⊤) instead.
	loopTaints []*loopTaintInfo
}

// loopTaintInfo is what one enclosing loop body may modify.
type loopTaintInfo struct {
	vars, fields map[string]bool
	allFields    bool
}

// addrTakenVars collects every variable whose address is taken anywhere in
// the function.
func addrTakenVars(b *lang.Block) map[string]bool {
	out := map[string]bool{}
	lang.WalkStmts(b, func(st lang.Stmt) {
		walkStmtExprsLint(st, func(e lang.Expr) {
			lang.WalkExprs(e, func(x lang.Expr) {
				if a, ok := x.(*lang.AddrExpr); ok {
					out[a.Name] = true
				}
			})
		})
	})
	return out
}

// loopTaintFor prescans one loop body for everything it may modify.
func loopTaintFor(b *lang.Block) *loopTaintInfo {
	lt := &loopTaintInfo{vars: map[string]bool{}, fields: map[string]bool{}}
	lang.WalkStmts(b, func(st lang.Stmt) {
		if a, ok := st.(*lang.AssignStmt); ok {
			switch lhs := a.LHS.(type) {
			case *lang.Ident:
				lt.vars[lhs.Name] = true
			case *lang.FieldAccess:
				lt.fields[lhs.Field] = true
			}
		}
		walkStmtExprsLint(st, func(e lang.Expr) {
			lang.WalkExprs(e, func(x lang.Expr) {
				if _, ok := x.(*lang.CallExpr); ok {
					// A call may write any heap field (locals are safe:
					// only address-taken vars can change through a call,
					// and those never form guards).
					lt.allFields = true
				}
			})
		})
	})
	return lt
}

// tainted reports whether any enclosing loop may modify one of the atom's
// inputs.
func (w *handleWalker) tainted(vars, fields []string) bool {
	for _, lt := range w.loopTaints {
		for _, v := range vars {
			if lt.vars[v] {
				return true
			}
		}
		if lt.allFields && len(fields) > 0 {
			return true
		}
		for _, f := range fields {
			if lt.fields[f] {
				return true
			}
		}
	}
	return false
}

// atomRefs interns branch atoms as guard references, skipping atoms whose
// truth value the analysis cannot pin (address-taken vars, loop-modified
// inputs).
func (w *handleWalker) atomRefs(atoms []guard.Atom) []guard.Ref {
	var out []guard.Ref
	for _, at := range atoms {
		usable := true
		for _, v := range at.Vars {
			if w.addrTaken[v] {
				usable = false
			}
		}
		if !usable || w.tainted(at.Vars, at.Fields) {
			continue
		}
		p := guard.Intern(at.Canon, w.ver.Version(at.Vars, at.Fields), at.Vars, at.Fields, nil)
		out = append(out, guard.Ref{P: p, Neg: at.Neg})
	}
	return out
}

// bumpCalls invalidates all field versions when the expression performs a
// call (the callee may overwrite any heap field).
func (w *handleWalker) bumpCalls(e lang.Expr) {
	lang.WalkExprs(e, func(x lang.Expr) {
		if _, ok := x.(*lang.CallExpr); ok {
			w.ver.BumpAllFields()
		}
	})
}

func (w *handleWalker) tracked(name string) bool {
	t, ok := w.types[name]
	return ok && t.Ptr > 0
}

// block walks a statement list, mutating env in place, and reports whether
// control cannot flow past the block.
func (w *handleWalker) block(b *lang.Block, env handleEnv) bool {
	if b == nil {
		return false
	}
	for _, st := range b.Stmts {
		if w.stmt(st, env) {
			return true
		}
	}
	return false
}

func (w *handleWalker) stmt(st lang.Stmt, env handleEnv) (terminates bool) {
	switch s := st.(type) {
	case *lang.DeclStmt:
		for _, it := range s.Items {
			w.types[it.Name] = it.Type
			if it.Type.Ptr > 0 {
				env[it.Name] = varInfo{state: psUninit, origin: s.StmtPos(),
					originMsg: fmt.Sprintf("%s declared here", it.Name)}
			}
		}
	case *lang.AssignStmt:
		w.assign(s, env)
		w.bumpCalls(s.RHS)
		switch lhs := s.LHS.(type) {
		case *lang.Ident:
			w.ver.BumpVar(lhs.Name)
		case *lang.FieldAccess:
			w.ver.BumpField(lhs.Field)
		}
	case *lang.ExprStmt:
		w.expr(s.X, env)
		w.bumpCalls(s.X)
	case *lang.ReturnStmt:
		w.expr(s.Value, env)
		return true
	case *lang.BlockStmt:
		return w.block(s.Body, env)
	case *lang.IfStmt:
		w.expr(s.Cond, env)
		w.bumpCalls(s.Cond)
		// Both branches' guard references are interned at the branch
		// point: they denote the condition's value at this single
		// evaluation, so opposite signs genuinely exclude each other.
		thenAtoms, elseAtoms := guard.BranchAtoms(s.Cond)
		thenRefs, elseRefs := w.atomRefs(thenAtoms), w.atomRefs(elseAtoms)
		thenEnv, elseEnv := env.clone(), env.clone()
		refine(s.Cond, thenEnv, true)
		refine(s.Cond, elseEnv, false)
		saved := len(w.guards)
		w.guards = append(w.guards, thenRefs...)
		thenEnds := w.block(s.Then, thenEnv)
		w.guards = append(w.guards[:saved], elseRefs...)
		elseEnds := s.Else != nil && w.block(s.Else, elseEnv)
		w.guards = w.guards[:saved]
		switch {
		case thenEnds && elseEnds:
			return true
		case thenEnds:
			replace(env, elseEnv)
		case elseEnds:
			replace(env, thenEnv)
		default:
			replace(env, joinEnv(thenEnv, elseEnv))
		}
	case *lang.WhileStmt:
		w.expr(s.Cond, env)
		// Widen: anything the body assigns is unknown at the loop head.
		for _, name := range assignedVars(s.Body) {
			if w.tracked(name) {
				env[name] = varInfo{state: psValid}
			}
		}
		bodyEnv := env.clone()
		refine(s.Cond, bodyEnv, true)
		w.loopTaints = append(w.loopTaints, loopTaintFor(s.Body))
		w.block(s.Body, bodyEnv)
		w.loopTaints = w.loopTaints[:len(w.loopTaints)-1]
		replace(env, joinEnv(env, bodyEnv))
		// On exit the guard is false: while (x != NULL) leaves x NULL.
		refine(s.Cond, env, false)
		return constTrue(s.Cond)
	}
	return false
}

func (w *handleWalker) assign(s *lang.AssignStmt, env handleEnv) {
	w.expr(s.RHS, env)
	switch lhs := s.LHS.(type) {
	case *lang.FieldAccess:
		w.deref(lhs.Base, lhs.Pos, env)
		w.destructiveUpdate(lhs, env)
	case *lang.DerefExpr:
		w.deref(lhs.Name, lhs.ExprPos(), env)
	case *lang.Ident:
		if !w.tracked(lhs.Name) {
			return
		}
		env[lhs.Name] = w.eval(s.RHS, env)
	}
}

// eval abstracts the RHS of a pointer assignment.
func (w *handleWalker) eval(rhs lang.Expr, env handleEnv) varInfo {
	switch r := rhs.(type) {
	case *lang.MallocExpr:
		return varInfo{state: psNonNil, via: nil}
	case *lang.NullLit:
		return varInfo{state: psNil, origin: r.Pos,
			originMsg: "assigned NULL here"}
	case *lang.AddrExpr:
		return varInfo{state: psNonNil}
	case *lang.Ident:
		if vi, ok := env[r.Name]; ok {
			return vi
		}
		return varInfo{state: psValid}
	case *lang.FieldAccess:
		// A pointer loaded from the heap may be the structure's NULL
		// terminator; it also inherits the base handle's access path.
		via := map[string]bool{r.Field: true}
		if base, ok := env[r.Base]; ok {
			for f := range base.via {
				via[f] = true
			}
		}
		return varInfo{state: psMaybe, origin: r.Pos,
			originMsg: fmt.Sprintf("loaded from field %s here", r.Field), via: via}
	default:
		return varInfo{state: psValid}
	}
}

// destructiveUpdate handles a store to base->field: when field is a pointer
// field, every live handle that was reached through it goes stale.
func (w *handleWalker) destructiveUpdate(lhs *lang.FieldAccess, env handleEnv) {
	t, ok := w.types[lhs.Base]
	if !ok || !t.IsStruct {
		return
	}
	sd := w.ctx.Prog.Struct(t.Base)
	if sd == nil {
		return
	}
	fd := sd.Field(lhs.Field)
	if fd == nil || !fd.Type.IsPointerToStruct() {
		return
	}
	for name, vi := range env {
		if name == lhs.Base || vi.stale || !vi.via[lhs.Field] {
			continue
		}
		vi.stale = true
		vi.stalePos = lhs.Pos
		vi.staleField = lhs.Field
		vi.staleGuards = guard.Canon(w.guards)
		env[name] = vi
	}
}

// expr checks all dereferences an expression performs.
func (w *handleWalker) expr(e lang.Expr, env handleEnv) {
	lang.WalkExprs(e, func(x lang.Expr) {
		switch v := x.(type) {
		case *lang.FieldAccess:
			w.deref(v.Base, v.Pos, env)
		case *lang.DerefExpr:
			w.deref(v.Name, v.ExprPos(), env)
		case *lang.AddrExpr:
			// Its address escaped: assume the callee/aliases initialize it.
			if vi, ok := env[v.Name]; ok && (vi.state == psUninit || vi.state == psMaybeUninit) {
				vi.state = psValid
				env[v.Name] = vi
			}
		}
	})
}

// deref reports problems with dereferencing var name at pos, then assumes
// the handle valid so each problem is reported once.
func (w *handleWalker) deref(name string, pos lang.Pos, env handleEnv) {
	vi, ok := env[name]
	if !ok {
		return
	}
	var d *Diagnostic
	switch vi.state {
	case psUninit:
		d = &Diagnostic{Pos: pos, Severity: Error,
			Message: fmt.Sprintf("dereference of never-initialized handle %s", name)}
	case psMaybeUninit:
		d = &Diagnostic{Pos: pos, Severity: Warning,
			Message: fmt.Sprintf("dereference of possibly-uninitialized handle %s", name)}
	case psNil:
		d = &Diagnostic{Pos: pos, Severity: Error,
			Message: fmt.Sprintf("nil dereference of handle %s", name)}
	case psMaybe:
		d = &Diagnostic{Pos: pos, Severity: Warning,
			Message: fmt.Sprintf("possibly-nil dereference of handle %s", name)}
	}
	if d != nil {
		if vi.originMsg != "" {
			d.Related = append(d.Related, Related{Pos: vi.origin, Message: vi.originMsg})
		}
		w.ctx.Report(*d)
		vi.state = psValid
		vi.originMsg = ""
	}
	if vi.stale {
		if ru, rd, ok := guard.Conflict(guard.Canon(w.guards), vi.staleGuards); ok {
			// The update and this use sit on mutually exclusive branch
			// outcomes of one condition: the hazard cannot happen.  What
			// would have been a maybe-stale warning upgrades to a
			// definite all-clear, citing the contradicting guards.
			w.ctx.Report(Diagnostic{Pos: pos, Severity: Info,
				Message:           fmt.Sprintf("use of handle %s is safe despite the destructive update of field %s: the update executes only under %s, this use only under %s — the paths are mutually exclusive", name, vi.staleField, rd, ru),
				UpgradedFromMaybe: true,
				Related: []Related{{Pos: vi.stalePos,
					Message: fmt.Sprintf("field %s rewritten here", vi.staleField)}}})
		} else {
			w.ctx.Report(Diagnostic{Pos: pos, Severity: Warning,
				Message: fmt.Sprintf("use of handle %s after destructive update of field %s on its access path", name, vi.staleField),
				Related: []Related{{Pos: vi.stalePos,
					Message: fmt.Sprintf("field %s rewritten here", vi.staleField)}}})
		}
		vi.stale = false
	}
	env[name] = vi
}

// refine narrows env with the facts a branch condition establishes when it
// evaluates to want.
func refine(cond lang.Expr, env handleEnv, want bool) {
	setState := func(name string, st ptrState) {
		if vi, ok := env[name]; ok {
			vi.state = st
			vi.originMsg = ""
			env[name] = vi
		}
	}
	switch c := cond.(type) {
	case *lang.Ident:
		if want {
			setState(c.Name, psNonNil)
		} else {
			setState(c.Name, psNil)
		}
	case *lang.UnaryExpr:
		if c.Op == "!" {
			refine(c.X, env, !want)
		}
	case *lang.BinaryExpr:
		switch c.Op {
		case "&&":
			if want {
				refine(c.L, env, true)
				refine(c.R, env, true)
			}
		case "||":
			if !want {
				refine(c.L, env, false)
				refine(c.R, env, false)
			}
		case "==", "!=":
			name, ok := nullComparand(c)
			if !ok {
				return
			}
			isNil := (c.Op == "==") == want
			if isNil {
				setState(name, psNil)
			} else {
				setState(name, psNonNil)
			}
		}
	}
}

// nullComparand matches "x == NULL"-shaped comparisons (either side) and
// returns the variable name.
func nullComparand(c *lang.BinaryExpr) (string, bool) {
	if id, ok := c.L.(*lang.Ident); ok {
		if _, isNull := c.R.(*lang.NullLit); isNull {
			return id.Name, true
		}
	}
	if id, ok := c.R.(*lang.Ident); ok {
		if _, isNull := c.L.(*lang.NullLit); isNull {
			return id.Name, true
		}
	}
	return "", false
}

// joinEnv merges the states of two control-flow paths.
func joinEnv(a, b handleEnv) handleEnv {
	out := make(handleEnv, len(a))
	for name, va := range a {
		vb, ok := b[name]
		if !ok {
			out[name] = va
			continue
		}
		out[name] = joinVar(va, vb)
	}
	for name, vb := range b {
		if _, ok := a[name]; !ok {
			out[name] = vb
		}
	}
	return out
}

func joinVar(a, b varInfo) varInfo {
	out := a
	out.state = joinState(a.state, b.state)
	if out.state != a.state {
		out.origin, out.originMsg = b.origin, b.originMsg
		if out.state != b.state {
			out.originMsg = ""
		}
	}
	if len(b.via) > 0 {
		via := map[string]bool{}
		for f := range a.via {
			via[f] = true
		}
		for f := range b.via {
			via[f] = true
		}
		out.via = via
	}
	if b.stale && !a.stale {
		out.stale, out.stalePos, out.staleField = true, b.stalePos, b.staleField
		out.staleGuards = b.staleGuards
	}
	return out
}

func joinState(a, b ptrState) ptrState {
	if a == b {
		return a
	}
	if a == psUninit || b == psUninit || a == psMaybeUninit || b == psMaybeUninit {
		return psMaybeUninit
	}
	if (a == psValid || a == psNonNil) && (b == psValid || b == psNonNil) {
		return psValid
	}
	return psMaybe
}

// replace copies src's bindings into dst in place.
func replace(dst, src handleEnv) {
	for k := range dst {
		if _, ok := src[k]; !ok {
			delete(dst, k)
		}
	}
	for k, v := range src {
		dst[k] = v
	}
}

// assignedVars lists variables assigned anywhere in the block.
func assignedVars(b *lang.Block) []string {
	var out []string
	lang.WalkStmts(b, func(st lang.Stmt) {
		if a, ok := st.(*lang.AssignStmt); ok {
			if id, ok := a.LHS.(*lang.Ident); ok {
				out = append(out, id.Name)
			}
		}
	})
	return out
}
