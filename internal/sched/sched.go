// Package sched simulates a small shared-memory multiprocessor executing
// the task graphs of the sparse-matrix kernels, deterministically.  It
// stands in for the paper's 8-PE Sequent (see DESIGN.md — substitution
// table): Figure 7 reports speedup *shape*, which is a function of the task
// DAG's per-phase parallelism, the sequential fraction, barrier overheads,
// and load imbalance — exactly what greedy list scheduling over the real
// per-task work computes.
//
// Execution model: each elimination step is a sequence of phases separated
// by barriers.  A row-parallel phase schedules its per-row tasks onto P
// processors with the longest-processing-time (LPT) greedy rule; a
// sequential phase runs on one processor.  Every parallel phase pays a
// fixed synchronization overhead (fork + barrier), the term that keeps
// real machines below the Amdahl bound.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/sparse"
)

// Mode selects which phases the compiler was able to parallelize.
type Mode int

// Parallelization modes (§5).
const (
	// Sequential: no parallel phases; the baseline T(1).
	Sequential Mode = iota
	// Partial: the "simplistic analysis which only collected access paths
	// for structurally read-only portions of the code": the heuristic and
	// pivot-search phases parallelize, but the fill-in phase's pointer
	// stores invalidate the axioms (§3.4), so the fill-in and elimination
	// phases stay sequential.
	Partial
	// Full: the "more sophisticated analysis capable of handling
	// modifications to the structure": fill-in and elimination also
	// parallelize; only the pivot adjustment remains sequential.
	Full
)

func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Partial:
		return "partial"
	case Full:
		return "full"
	}
	return "invalid"
}

// Machine models the simulated multiprocessor.
type Machine struct {
	// PEs is the number of processors.
	PEs int
	// BarrierCost is the fixed overhead (in work units) of forking a
	// row-parallel phase and joining at its barrier.  Zero means free
	// synchronization (the pure Amdahl bound).
	BarrierCost int64
}

// LPT schedules the task costs onto p processors with the
// longest-processing-time greedy rule and returns the makespan.
func LPT(costs []int, p int) int64 {
	if p <= 1 {
		var sum int64
		for _, c := range costs {
			sum += int64(c)
		}
		return sum
	}
	sorted := append([]int{}, costs...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	loads := make([]int64, p)
	for _, c := range sorted {
		min := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += int64(c)
	}
	var max int64
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// phaseTime returns the simulated time of one phase.  A parallelizable
// phase runs in the better of its parallel and sequential times: the
// run-time system does not fork a phase too small to amortize its barrier
// (the same guard any self-scheduling loop runtime applies).
func (m Machine) phaseTime(costs []int, seqTail int, parallel bool) int64 {
	var sum int64
	for _, c := range costs {
		sum += int64(c)
	}
	seq := sum + int64(seqTail)
	if !parallel || m.PEs <= 1 || len(costs) == 0 {
		return seq
	}
	par := LPT(costs, m.PEs) + int64(seqTail) + m.BarrierCost
	if par < seq {
		return par
	}
	return seq
}

// FactorTime simulates the factorization trace under the given mode.
func (m Machine) FactorTime(tr *sparse.Trace, mode Mode) int64 {
	var total int64
	for _, st := range tr.Steps {
		readOnly := mode == Partial || mode == Full
		fullPar := mode == Full
		total += m.phaseTime(st.Heuristic.RowCosts, st.Heuristic.Seq, readOnly)
		total += m.phaseTime(st.Search.RowCosts, st.Search.Seq, readOnly)
		total += int64(st.Adjust) // inherently sequential in every mode
		total += m.phaseTime(st.Fillin.RowCosts, st.Fillin.Seq, fullPar)
		total += m.phaseTime(st.Elim.RowCosts, st.Elim.Seq, fullPar)
	}
	return total
}

// ScaleTime simulates one Scale pass (row-parallel in both modes, since
// scaling is structurally read-only everywhere).
func (m Machine) ScaleTime(rowCosts []int, mode Mode) int64 {
	return m.phaseTime(rowCosts, 0, mode != Sequential)
}

// SolveTime simulates forward/backward substitution, which is inherently
// sequential across pivot steps (each step consumes the previous one's
// result).
func (m Machine) SolveTime(stepCosts []int) int64 {
	var sum int64
	for _, c := range stepCosts {
		sum += int64(c)
	}
	return sum
}

// Workload bundles the traces of one Scale+Factor+Solve run.
type Workload struct {
	Scale  []int
	Factor *sparse.Trace
	Solve  []int
}

// TotalTime simulates the whole workload.
func (m Machine) TotalTime(w Workload, mode Mode) int64 {
	t := m.FactorTime(w.Factor, mode)
	if w.Scale != nil {
		t += m.ScaleTime(w.Scale, mode)
	}
	if w.Solve != nil {
		t += m.SolveTime(w.Solve)
	}
	return t
}

// Speedup returns T(1, Sequential) / T(PEs, mode) for the factor-only
// workload.
func Speedup(tr *sparse.Trace, pes int, mode Mode, barrier int64) float64 {
	seq := Machine{PEs: 1}.FactorTime(tr, Sequential)
	par := Machine{PEs: pes, BarrierCost: barrier}.FactorTime(tr, mode)
	return float64(seq) / float64(par)
}

// WorkloadSpeedup returns the Scale+Factor+Solve speedup.
func WorkloadSpeedup(w Workload, pes int, mode Mode, barrier int64) float64 {
	seq := Machine{PEs: 1}.TotalTime(w, Sequential)
	par := Machine{PEs: pes, BarrierCost: barrier}.TotalTime(w, mode)
	return float64(seq) / float64(par)
}

// Row is one line of the Figure 7 table.
type Row struct {
	Name     string
	Speedups map[int]float64
}

// Figure7 regenerates the paper's speedup table for the given workload:
// four rows (factor-only and scale+factor+solve, each partial and full) at
// the given PE counts.
func Figure7(w Workload, pes []int, barrier int64) []Row {
	rows := []Row{
		{Name: "Factor only (partial)", Speedups: map[int]float64{}},
		{Name: "Scale, Factor, Solve (partial)", Speedups: map[int]float64{}},
		{Name: "Factor only (full)", Speedups: map[int]float64{}},
		{Name: "Scale, Factor, Solve (full)", Speedups: map[int]float64{}},
	}
	for _, p := range pes {
		rows[0].Speedups[p] = Speedup(w.Factor, p, Partial, barrier)
		rows[1].Speedups[p] = WorkloadSpeedup(w, p, Partial, barrier)
		rows[2].Speedups[p] = Speedup(w.Factor, p, Full, barrier)
		rows[3].Speedups[p] = WorkloadSpeedup(w, p, Full, barrier)
	}
	return rows
}

// RenderTable formats Figure 7 rows in the paper's layout.
func RenderTable(caption string, rows []Row, pes []int) string {
	out := caption + "\n"
	header := fmt.Sprintf("%-34s", "")
	for _, p := range pes {
		header += fmt.Sprintf("%7s", fmt.Sprintf("%d PEs", p))
	}
	out += header + "\n"
	for _, r := range rows {
		line := fmt.Sprintf("%-34s", r.Name)
		for _, p := range pes {
			line += fmt.Sprintf("%7.1f", r.Speedups[p])
		}
		out += line + "\n"
	}
	return out
}

// DefaultBarrierCost is the synchronization overhead (work units per
// parallel phase) used by the Figure 7 harness.  One work unit is one
// element visit; the value models a 1980s bus-based shared-memory
// fork/barrier costing a few hundred element visits.  It is the model's
// single calibrated parameter; EXPERIMENTS.md reports a sensitivity sweep
// (the partial/full ordering and both plateaus are stable from 0 to 300+).
const DefaultBarrierCost = 200
