package sched

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func TestLPT(t *testing.T) {
	if got := LPT([]int{5, 3, 2}, 1); got != 10 {
		t.Errorf("LPT p=1 = %d, want 10", got)
	}
	if got := LPT([]int{5, 3, 2}, 2); got != 5 {
		t.Errorf("LPT p=2 = %d, want 5 (5 | 3+2)", got)
	}
	if got := LPT([]int{4, 4, 4, 4}, 2); got != 8 {
		t.Errorf("LPT p=2 = %d, want 8", got)
	}
	if got := LPT(nil, 4); got != 0 {
		t.Errorf("LPT empty = %d", got)
	}
	// More PEs than tasks: bounded by the largest task.
	if got := LPT([]int{7, 1}, 8); got != 7 {
		t.Errorf("LPT p=8 = %d, want 7", got)
	}
}

// TestPropertyLPTBounds: makespan is at least both max(task) and
// ceil(sum/p), and at most sum.
func TestPropertyLPTBounds(t *testing.T) {
	f := func(raw []uint8, pRaw uint8) bool {
		p := int(pRaw)%8 + 1
		costs := make([]int, len(raw))
		var sum int64
		max := int64(0)
		for i, r := range raw {
			costs[i] = int(r)
			sum += int64(r)
			if int64(r) > max {
				max = int64(r)
			}
		}
		got := LPT(costs, p)
		lower := (sum + int64(p) - 1) / int64(p)
		if max > lower {
			lower = max
		}
		return got >= lower && got <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func workload(t *testing.T, n, nnz int) Workload {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	m := sparse.RandomCircuit(rng, n, nnz)
	lu, err := m.Factor()
	if err != nil {
		t.Fatal(err)
	}
	return Workload{Scale: m.ScaleTrace(), Factor: lu.Trace, Solve: lu.SolveTrace()}
}

func TestSequentialIsIdentityBaseline(t *testing.T) {
	w := workload(t, 60, 240)
	t1 := Machine{PEs: 1}.FactorTime(w.Factor, Sequential)
	t1p := Machine{PEs: 7}.FactorTime(w.Factor, Sequential)
	if t1 != t1p {
		t.Errorf("sequential mode must ignore PE count: %d vs %d", t1, t1p)
	}
	var total int64
	for _, st := range w.Factor.Steps {
		total += st.Heuristic.Total() + st.Search.Total() + int64(st.Adjust) + st.Fillin.Total() + st.Elim.Total()
	}
	if t1 != total {
		t.Errorf("sequential time %d != total work %d", t1, total)
	}
}

func TestSpeedupOrdering(t *testing.T) {
	w := workload(t, 80, 400)
	for _, p := range []int{2, 4, 7} {
		for _, barrier := range []int64{0, 200, 1000} {
			partial := Speedup(w.Factor, p, Partial, barrier)
			full := Speedup(w.Factor, p, Full, barrier)
			if partial < 1 || full < 1 {
				t.Errorf("p=%d b=%d: speedups below 1: partial %.2f full %.2f", p, barrier, partial, full)
			}
			if full < partial {
				t.Errorf("p=%d b=%d: full (%.2f) must not lose to partial (%.2f)", p, barrier, full, partial)
			}
			if full > float64(p)+1e-9 {
				t.Errorf("p=%d b=%d: superlinear full speedup %.2f", p, barrier, full)
			}
		}
	}
	// Speedups grow with PE count.
	if Speedup(w.Factor, 7, Full, 0) <= Speedup(w.Factor, 2, Full, 0) {
		t.Error("full speedup should grow from 2 to 7 PEs")
	}
}

func TestBarrierCostDampensSpeedup(t *testing.T) {
	w := workload(t, 80, 400)
	free := Speedup(w.Factor, 7, Full, 0)
	costly := Speedup(w.Factor, 7, Full, 2000)
	if costly >= free {
		t.Errorf("barrier cost should reduce speedup: %.2f vs %.2f", costly, free)
	}
}

func TestSolveIsSequential(t *testing.T) {
	w := workload(t, 60, 240)
	t1 := Machine{PEs: 1}.SolveTime(w.Solve)
	t7 := Machine{PEs: 7}.SolveTime(w.Solve)
	if t1 != t7 {
		t.Error("solve must be sequential at any PE count")
	}
}

func TestFigure7ShapeSmall(t *testing.T) {
	w := workload(t, 120, 700)
	pes := []int{2, 4, 7}
	rows := Figure7(w, pes, 0)
	if len(rows) != 4 {
		t.Fatalf("Figure7 rows = %d", len(rows))
	}
	// Shape invariants from the paper: full beats partial at every PE
	// count; partial plateaus (its 7-PE speedup is well under the linear
	// bound); scale+factor+solve tracks factor-only closely.
	for _, p := range pes {
		if rows[2].Speedups[p] < rows[0].Speedups[p] {
			t.Errorf("p=%d: full factor (%.2f) below partial (%.2f)", p, rows[2].Speedups[p], rows[0].Speedups[p])
		}
		diff := rows[0].Speedups[p] - rows[1].Speedups[p]
		if diff < -0.5 || diff > 1.0 {
			t.Errorf("p=%d: S+F+S diverges from factor-only by %.2f", p, diff)
		}
	}
	if rows[0].Speedups[7] > 5.0 {
		t.Errorf("partial at 7 PEs = %.2f, should plateau well below linear", rows[0].Speedups[7])
	}
	out := RenderTable("test", rows, pes)
	for _, want := range []string{"Factor only (partial)", "7 PEs", "Scale, Factor, Solve (full)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Sequential, Partial, Full} {
		if m.String() == "invalid" {
			t.Errorf("missing string for mode %d", int(m))
		}
	}
}
