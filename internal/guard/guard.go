// Package guard implements the path-sensitivity layer of the dependence
// test (Yao et al., "Efficient Path-Sensitive Data-Dependence Analysis"):
// sparse guard sets attached to abstract accesses.
//
// A guard is an interned branch predicate — the condition of an if
// statement that dominates an access — paired with a sign: positive on the
// then-edge, negated on the else-edge.  Two accesses whose guard sets
// contain the same predicate with opposite signs lie on mutually exclusive
// control-flow paths, so no single execution performs both and the
// dependence between them is infeasible regardless of what the aliasing
// prover can or cannot show.
//
// Predicate identity is (canonical condition text, version).  The version
// is a hash of the modification counters of every variable and field the
// condition reads, salted per analysis walk (see Versioner in cond.go).
// Two guard references therefore share a predicate only when the condition
// text is identical AND nothing the condition depends on was modified
// between the two program points in the walk that created them — which is
// exactly the regime in which "same text" implies "same run-time truth
// value".  A reassignment of a condition variable bumps its counter, the
// version changes, and the stale predicate can never again pair (or
// conflict) with fresh ones.
//
// A predicate over pointer variables may additionally carry a Fact: the
// access paths the two comparands held at the branch point, when both were
// reachable from one common handle.  The SAT-lite second tier in core
// discharges these through the existing prover — a guard "x == y" whose
// comparand paths are provably disjoint is infeasible (the guarded code is
// dead), and a guard "x != y" whose comparand paths are definitely aliased
// likewise.
package guard

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/pathexpr"
)

// Fact is the pointer-comparison evidence attached to an equality
// predicate "x == y": the access paths the two comparands held at the
// branch point, relative to one common handle.  The prover can refute the
// predicate (paths disjoint ⇒ x == y never holds) or its negation (paths
// definitely aliased ⇒ x != y never holds).
type Fact struct {
	X, Y         string        // comparand variable names
	XPath, YPath pathexpr.Expr // their paths from the common handle
	Handle       string        // the common handle (diagnostic use only)
}

// Pred is an interned guard predicate.  Preds are immutable and unique per
// (canonical condition, version): comparing two with == decides whether
// they denote the same run-time truth value.
type Pred struct {
	id     uint64
	cond   string
	ver    uint64
	vars   []string
	fields []string
	eq     *Fact
}

// ID returns the predicate's stable identity (never 0, never reused).
func (p *Pred) ID() uint64 { return p.id }

// Cond returns the canonical positive rendering of the condition.
func (p *Pred) Cond() string { return p.cond }

// Vars returns the variables the condition reads.
func (p *Pred) Vars() []string { return p.vars }

// Fields returns the struct fields the condition reads.
func (p *Pred) Fields() []string { return p.fields }

// Eq returns the pointer-comparison fact, or nil for non-pointer
// predicates.
func (p *Pred) Eq() *Fact { return p.eq }

// Ref is one signed guard reference: predicate p held true (then-edge) or
// false (else-edge) on every path reaching the guarded point.
type Ref struct {
	P   *Pred
	Neg bool
}

// String renders the reference for diagnostics: the canonical condition,
// wrapped in !(...) when negated.
func (r Ref) String() string {
	if r.P == nil {
		return "<nil>"
	}
	if r.Neg {
		return "!(" + r.P.Cond() + ")"
	}
	return r.P.Cond()
}

// Set is a sorted, deduplicated conjunction of guard references — the
// dominating branch facts of one abstract access.  The zero value (nil) is
// the empty set ⊤: no path constraints, every query behaves exactly as it
// did before the path-sensitivity layer.
type Set []Ref

// Canon builds a Set from an unordered reference slice: sorted by
// (predicate ID, sign) with exact duplicates removed.  The input is not
// modified.
func Canon(refs []Ref) Set {
	if len(refs) == 0 {
		return nil
	}
	s := make(Set, 0, len(refs))
	s = append(s, refs...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].P.id != s[j].P.id {
			return s[i].P.id < s[j].P.id
		}
		return !s[i].Neg && s[j].Neg
	})
	out := s[:0]
	for i, r := range s {
		if i > 0 && r == s[i-1] {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Filter returns the subset of s for which keep returns true (nil when
// empty).  s is not modified.
func (s Set) Filter(keep func(Ref) bool) Set {
	var out Set
	for _, r := range s {
		if keep(r) {
			out = append(out, r)
		}
	}
	return out
}

// String renders the conjunction for diagnostics.
func (s Set) String() string {
	if len(s) == 0 {
		return "⊤"
	}
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, " && ")
}

// Conflict reports whether the two guard sets contain the same predicate
// with opposite signs — the syntactic-negation tier of the SAT-lite check.
// On success it returns the conflicting references (one from each set).
// Conflict(s, s) also detects a self-contradictory set (dead code).
func Conflict(a, b Set) (Ref, Ref, bool) {
	// Sets are tiny (nesting depth of the guarded access); the quadratic
	// walk beats anything with allocation.
	for _, ra := range a {
		for _, rb := range b {
			if ra.P == rb.P && ra.Neg != rb.Neg {
				return ra, rb, true
			}
		}
	}
	return Ref{}, Ref{}, false
}

// predKey is the interner key: canonical condition text plus version.
type predKey struct {
	cond string
	ver  uint64
}

var (
	internMu sync.Mutex
	interned = make(map[predKey]*Pred)
	nextID   uint64
)

// Intern returns the unique predicate for (cond, version).  The first call
// for a key fixes the predicate's variables, fields, and fact; later calls
// return the same *Pred (versions are salted per analysis walk, so two
// walks never collide on a key — see Versioner).
func Intern(cond string, version uint64, vars, fields []string, eq *Fact) *Pred {
	key := predKey{cond: cond, ver: version}
	internMu.Lock()
	defer internMu.Unlock()
	if p, ok := interned[key]; ok {
		return p
	}
	nextID++
	p := &Pred{id: nextID, cond: cond, ver: version, vars: vars, fields: fields, eq: eq}
	interned[key] = p
	return p
}

// InternedPreds reports the number of distinct predicates held by the
// process-wide table (observability; the table is append-only like the
// path-expression interner's).
func InternedPreds() int {
	internMu.Lock()
	defer internMu.Unlock()
	return len(interned)
}
