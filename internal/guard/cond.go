// Condition canonicalization and predicate versioning: the translation
// from branch-condition syntax trees to guardable atoms, and the
// modification counters that make "same canonical text" imply "same
// run-time truth value".
package guard

import (
	"sync/atomic"

	"repro/internal/lang"
	"repro/internal/pathexpr"
)

// Atom is one guardable conjunct extracted from a branch condition: a
// canonical positive rendering plus the sign it carries on the edge being
// guarded, and the variables/fields its truth value depends on.
type Atom struct {
	Canon  string
	Neg    bool
	Vars   []string
	Fields []string
	// EqX/EqY name the comparands when the atom is a variable equality
	// "x == y" eligible for a prover-backed Fact; both empty otherwise.
	EqX, EqY string
}

// BranchAtoms decomposes an if condition into the atoms that hold on the
// then-edge (condition true) and on the else-edge (condition false).
//
// Decomposition is sound only in the direction that yields a conjunction:
// a && b splits on the true edge (both hold) but contributes nothing on
// the false edge (only the disjunction !a || !b holds); dually, a || b
// splits only on the false edge.  Comparisons are canonicalized so that
// syntactic negation pairs every form with its complement:
//
//	a > b   ≡  b < a          a != b  ≡  !(a == b)
//	a >= b  ≡  !(a < b)       a <= b  ≡  !(b < a)
//	!e      flips the sign of e's atoms
//
// and equality operands are sorted so "x == y" and "y == x" intern to one
// predicate.  Conditions outside the guardable fragment (calls, arithmetic
// beyond a renderable operand) contribute no atoms — the guard set just
// stays smaller, which is always sound.
func BranchAtoms(cond lang.Expr) (then, els []Atom) {
	collect(cond, false, &then)
	collect(cond, true, &els)
	return then, els
}

func collect(e lang.Expr, neg bool, out *[]Atom) {
	switch v := e.(type) {
	case *lang.Ident:
		*out = append(*out, Atom{Canon: v.Name, Neg: neg, Vars: []string{v.Name}})
	case *lang.FieldAccess:
		*out = append(*out, Atom{
			Canon:  v.Base + "->" + v.Field,
			Neg:    neg,
			Vars:   []string{v.Base},
			Fields: []string{v.Field},
		})
	case *lang.UnaryExpr:
		if v.Op == "!" {
			collect(v.X, !neg, out)
		}
	case *lang.BinaryExpr:
		collectBinary(v, neg, out)
	}
}

func collectBinary(v *lang.BinaryExpr, neg bool, out *[]Atom) {
	switch v.Op {
	case "&&":
		if !neg {
			collect(v.L, false, out)
			collect(v.R, false, out)
		}
	case "||":
		if neg {
			collect(v.L, true, out)
			collect(v.R, true, out)
		}
	case "==", "!=":
		l, lv, lf, lok := renderOperand(v.L)
		r, rv, rf, rok := renderOperand(v.R)
		if !lok || !rok {
			return
		}
		eqX, eqY := identName(v.L), identName(v.R)
		if l > r { // symmetric: one canonical operand order
			l, r = r, l
			eqX, eqY = eqY, eqX
		}
		a := Atom{
			Canon:  l + " == " + r,
			Neg:    neg != (v.Op == "!="),
			Vars:   append(lv, rv...),
			Fields: append(lf, rf...),
		}
		if eqX != "" && eqY != "" && eqX != eqY {
			a.EqX, a.EqY = eqX, eqY
		}
		*out = append(*out, a)
	case "<", ">", "<=", ">=":
		l, lv, lf, lok := renderOperand(v.L)
		r, rv, rf, rok := renderOperand(v.R)
		if !lok || !rok {
			return
		}
		// Normalize to strict-less-than form; >= and <= land on the
		// negation of the corresponding <.
		canonNeg := neg
		switch v.Op {
		case ">":
			l, r = r, l
		case ">=":
			canonNeg = !neg
		case "<=":
			l, r = r, l
			canonNeg = !neg
		}
		*out = append(*out, Atom{
			Canon:  l + " < " + r,
			Neg:    canonNeg,
			Vars:   append(lv, rv...),
			Fields: append(lf, rf...),
		})
	}
}

// renderOperand renders a comparison operand canonically, collecting the
// variables and fields it reads.  ok is false outside the renderable
// fragment (the atom is then dropped).
func renderOperand(e lang.Expr) (s string, vars, fields []string, ok bool) {
	switch v := e.(type) {
	case *lang.Ident:
		return v.Name, []string{v.Name}, nil, true
	case *lang.NumLit:
		return v.Text, nil, nil, true
	case *lang.NullLit:
		return "NULL", nil, nil, true
	case *lang.FieldAccess:
		return v.Base + "->" + v.Field, []string{v.Base}, []string{v.Field}, true
	case *lang.UnaryExpr:
		if v.Op == "-" {
			if n, ok := v.X.(*lang.NumLit); ok {
				return "-" + n.Text, nil, nil, true
			}
		}
	}
	return "", nil, nil, false
}

func identName(e lang.Expr) string {
	if id, ok := e.(*lang.Ident); ok {
		return id.Name
	}
	return ""
}

// saltCounter hands each Versioner a process-unique salt, so predicates
// created by different analysis walks (different functions, different
// passes, re-analyses of an edited function) can never collide on an
// interner key even when their canonical text and local counters agree.
var saltCounter atomic.Uint64

// Versioner tracks modification counters for one analysis walk.  Every
// assignment to a variable bumps its counter; every store through a field
// bumps the field's; an opaque call bumps the all-fields epoch.  A
// predicate's version hashes the counters of everything it reads, so two
// occurrences of the same condition text share a version — and hence a
// predicate — exactly when nothing they depend on changed in between.
type Versioner struct {
	salt     uint64
	varVer   map[string]uint64
	fieldVer map[string]uint64
	allEpoch uint64
}

// NewVersioner returns a fresh versioner with a process-unique salt.
func NewVersioner() *Versioner {
	return &Versioner{
		salt:     saltCounter.Add(1),
		varVer:   make(map[string]uint64),
		fieldVer: make(map[string]uint64),
	}
}

// BumpVar records an assignment to (or address-taking of) a variable.
func (v *Versioner) BumpVar(name string) { v.varVer[name]++ }

// BumpField records a store through the named field (any base).
func (v *Versioner) BumpField(field string) { v.fieldVer[field]++ }

// BumpAllFields records an event that may write arbitrary heap fields (an
// opaque call, a summary-less callee).
func (v *Versioner) BumpAllFields() { v.allEpoch++ }

// Version hashes the current counters of the given variables and fields
// into a predicate version.  Field-reading predicates also absorb the
// all-fields epoch.
func (v *Versioner) Version(vars, fields []string) uint64 {
	h := pathexpr.MixInit
	h = pathexpr.Mix64(h, v.salt)
	for _, x := range vars {
		h = mixString(h, x)
		h = pathexpr.Mix64(h, v.varVer[x])
	}
	for _, f := range fields {
		h = mixString(h, f)
		h = pathexpr.Mix64(h, v.fieldVer[f])
	}
	if len(fields) > 0 {
		h = pathexpr.Mix64(h, v.allEpoch)
	}
	return h
}

// mixString folds a string into the hash byte-wise (FNV-1a via Mix64).
func mixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = pathexpr.Mix64(h, uint64(s[i]))
	}
	return pathexpr.Mix64(h, 0xff) // terminator
}
