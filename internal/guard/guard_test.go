package guard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/lang"
)

func ident(n string) *lang.Ident { return &lang.Ident{Name: n} }
func num(t string) *lang.NumLit  { return &lang.NumLit{Text: t} }
func bin(op string, l, r lang.Expr) *lang.BinaryExpr {
	return &lang.BinaryExpr{Op: op, L: l, R: r}
}
func not(x lang.Expr) *lang.UnaryExpr { return &lang.UnaryExpr{Op: "!", X: x} }

func atomStrings(atoms []Atom) []string {
	out := make([]string, len(atoms))
	for i, a := range atoms {
		if a.Neg {
			out[i] = "!(" + a.Canon + ")"
		} else {
			out[i] = a.Canon
		}
	}
	return out
}

func TestBranchAtomsCanonicalization(t *testing.T) {
	cases := []struct {
		name string
		cond lang.Expr
		then []string
		els  []string
	}{
		{"ident", ident("mode"), []string{"mode"}, []string{"!(mode)"}},
		{"not", not(ident("mode")), []string{"!(mode)"}, []string{"mode"}},
		{"field", &lang.FieldAccess{Base: "p", Field: "flag"},
			[]string{"p->flag"}, []string{"!(p->flag)"}},
		// == is symmetric: operands sort to one canonical order.
		{"eq-sorted", bin("==", ident("y"), ident("x")),
			[]string{"x == y"}, []string{"!(x == y)"}},
		{"neq", bin("!=", ident("x"), ident("y")),
			[]string{"!(x == y)"}, []string{"x == y"}},
		// Ordered comparisons normalize to strict-less-than form.
		{"gt", bin(">", ident("a"), ident("b")),
			[]string{"b < a"}, []string{"!(b < a)"}},
		{"ge", bin(">=", ident("a"), ident("b")),
			[]string{"!(a < b)"}, []string{"a < b"}},
		{"le", bin("<=", ident("a"), ident("b")),
			[]string{"!(b < a)"}, []string{"b < a"}},
		// Conjunction splits only where it yields a conjunction of atoms.
		{"and", bin("&&", ident("a"), ident("b")),
			[]string{"a", "b"}, nil},
		{"or", bin("||", ident("a"), ident("b")),
			nil, []string{"!(a)", "!(b)"}},
		// NULL and literal operands render; calls do not.
		{"null", bin("==", ident("p"), &lang.NullLit{}),
			[]string{"NULL == p"}, []string{"!(NULL == p)"}},
		{"num", bin("<", ident("i"), num("10")),
			[]string{"i < 10"}, []string{"!(i < 10)"}},
		{"call-opaque", bin("==", ident("x"), &lang.CallExpr{Name: "f"}),
			nil, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			then, els := BranchAtoms(tc.cond)
			if got := fmt.Sprint(atomStrings(then)); got != fmt.Sprint(tc.then) {
				t.Errorf("then atoms = %v, want %v", got, tc.then)
			}
			if got := fmt.Sprint(atomStrings(els)); got != fmt.Sprint(tc.els) {
				t.Errorf("else atoms = %v, want %v", got, tc.els)
			}
		})
	}
}

func TestComplementaryFormsShareAPredicate(t *testing.T) {
	// a >= b on the then-edge and a < b on the then-edge must be the same
	// predicate with opposite signs, so the conflict check fires across
	// the different surface spellings.
	v := NewVersioner()
	ge, _ := BranchAtoms(bin(">=", ident("a"), ident("b")))
	lt, _ := BranchAtoms(bin("<", ident("a"), ident("b")))
	if len(ge) != 1 || len(lt) != 1 {
		t.Fatalf("atoms: %v %v", ge, lt)
	}
	pg := Intern(ge[0].Canon, v.Version(ge[0].Vars, ge[0].Fields), ge[0].Vars, ge[0].Fields, nil)
	pl := Intern(lt[0].Canon, v.Version(lt[0].Vars, lt[0].Fields), lt[0].Vars, lt[0].Fields, nil)
	if pg != pl {
		t.Fatalf("a>=b and a<b interned to distinct predicates")
	}
	if ge[0].Neg == lt[0].Neg {
		t.Fatalf("a>=b and a<b carry the same sign; want opposite")
	}
	s := Canon([]Ref{{P: pg, Neg: ge[0].Neg}})
	u := Canon([]Ref{{P: pl, Neg: lt[0].Neg}})
	if _, _, ok := Conflict(s, u); !ok {
		t.Fatalf("Conflict(%v, %v) = false, want true", s, u)
	}
}

func TestConflict(t *testing.T) {
	v := NewVersioner()
	p := Intern("mode", v.Version([]string{"mode"}, nil), []string{"mode"}, nil, nil)
	q := Intern("flag", v.Version([]string{"flag"}, nil), []string{"flag"}, nil, nil)
	pos := Canon([]Ref{{P: p}, {P: q}})
	negp := Canon([]Ref{{P: p, Neg: true}})
	if a, b, ok := Conflict(pos, negp); !ok || a.P != p || b.P != p {
		t.Fatalf("Conflict = %v %v %v, want p vs !p", a, b, ok)
	}
	if _, _, ok := Conflict(pos, Canon([]Ref{{P: q}})); ok {
		t.Fatalf("conflict between compatible sets")
	}
	if _, _, ok := Conflict(nil, negp); ok {
		t.Fatalf("conflict against empty set")
	}
	// A self-contradictory set conflicts with itself (dead code).
	dead := Canon([]Ref{{P: p}, {P: p, Neg: true}})
	if _, _, ok := Conflict(dead, dead); !ok {
		t.Fatalf("self-contradictory set not detected")
	}
}

func TestCanonSortsAndDedups(t *testing.T) {
	v := NewVersioner()
	p := Intern("a", v.Version([]string{"a"}, nil), []string{"a"}, nil, nil)
	q := Intern("b", v.Version([]string{"b"}, nil), []string{"b"}, nil, nil)
	s := Canon([]Ref{{P: q}, {P: p}, {P: q}, {P: p, Neg: true}})
	if len(s) != 3 {
		t.Fatalf("len = %d, want 3 (dedup)", len(s))
	}
	if s[0].P != p || s[0].Neg || s[1].P != p || !s[1].Neg || s[2].P != q {
		t.Fatalf("order = %v, want [a !(a) b]", s)
	}
}

func TestVersionerSeparatesModifiedPredicates(t *testing.T) {
	v := NewVersioner()
	vars := []string{"mode"}
	p1 := Intern("mode", v.Version(vars, nil), vars, nil, nil)
	p2 := Intern("mode", v.Version(vars, nil), vars, nil, nil)
	if p1 != p2 {
		t.Fatalf("same text, no modification: distinct predicates")
	}
	v.BumpVar("mode")
	p3 := Intern("mode", v.Version(vars, nil), vars, nil, nil)
	if p3 == p1 {
		t.Fatalf("predicate survived a modification of its variable")
	}
	v.BumpVar("other")
	p4 := Intern("mode", v.Version(vars, nil), vars, nil, nil)
	if p4 != p3 {
		t.Fatalf("unrelated assignment changed the version")
	}

	// Field-reading predicates react to field stores and to the
	// all-fields epoch; var-only predicates ignore both.
	fv, ff := []string{"p"}, []string{"flag"}
	f1 := Intern("p->flag", v.Version(fv, ff), fv, ff, nil)
	v.BumpField("flag")
	f2 := Intern("p->flag", v.Version(fv, ff), fv, ff, nil)
	if f1 == f2 {
		t.Fatalf("field predicate survived a store to its field")
	}
	v.BumpAllFields()
	f3 := Intern("p->flag", v.Version(fv, ff), fv, ff, nil)
	if f3 == f2 {
		t.Fatalf("field predicate survived an opaque call")
	}
	p5 := Intern("mode", v.Version(vars, nil), vars, nil, nil)
	if p5 != p4 {
		t.Fatalf("var-only predicate changed on heap events")
	}
}

func TestVersionerSaltIsolatesWalks(t *testing.T) {
	a, b := NewVersioner(), NewVersioner()
	vars := []string{"mode"}
	pa := Intern("mode", a.Version(vars, nil), vars, nil, nil)
	pb := Intern("mode", b.Version(vars, nil), vars, nil, nil)
	if pa == pb {
		t.Fatalf("predicates from different walks unified")
	}
}

func TestInternConcurrent(t *testing.T) {
	v := NewVersioner()
	const goroutines = 8
	var wg sync.WaitGroup
	got := make([]*Pred, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := Intern(fmt.Sprintf("c%d", i%17), v.Version(nil, nil), nil, nil, nil)
				if i == 0 {
					got[g] = p
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("goroutine %d interned a distinct predicate for the same key", g)
		}
	}
}
