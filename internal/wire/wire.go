// Package wire is the transport-neutral layer of the query plane: the JSON
// request/response vocabulary of POST /v1/batch plus the small helpers both
// sides of the wire share (JSON writers, millisecond clamping, traceparent
// echo).  Everything that talks the protocol — the serving execution stack
// (internal/serve), the cluster router (internal/route), the loadgen client,
// and the scenario farm's cross-checker — depends on this package and on
// nothing above it; wire itself depends only on stdlib and telemetry, never
// on analysis or engines, so clients embed it without dragging the prover
// in.
//
// Two request shapes share the endpoint:
//
//   - Program mode: a mini-C program plus aptdep -batch query lines; the
//     server parses and analyzes the program and expands the lines.
//   - Raw mode: an axiom set (as parseable axiom lines, see axiom.Set.
//     Source) plus fully specified access-pair queries; the server skips
//     parsing/analysis and drives the engine directly.  This is the mode
//     for clients that already ran their own analysis — and for the
//     cluster differential suite, which must replay engine-level workloads
//     byte-identically through HTTP.
//
// Identity on the wire is always the axiom set's cross-process-stable
// Fingerprint64 (FNV-64a of the canonical key), never the process-local
// interned ID: IDs depend on interning order and mean nothing to another
// process.
package wire

import (
	"encoding/json"
	"net/http"
	"time"
)

// BatchRequest is the JSON body of POST /v1/batch.
type BatchRequest struct {
	// Program is the mini-C source text (with its struct axiom blocks).
	// Program mode only; must be empty when Raw queries are given.
	Program string `json:"program,omitempty"`
	// Fn names the function to analyze; may be empty when the program has
	// exactly one function.
	Fn string `json:"fn,omitempty"`
	// Queries are aptdep -batch lines; '#' comments and blank lines are
	// accepted and skipped.
	Queries []string `json:"queries,omitempty"`

	// AxiomSet carries the axiom set for Raw queries, one parseable axiom
	// per line (axiom.Set.Source rendering).  AxiomSetName optionally names
	// it (for stats and proof traces).
	AxiomSet     string `json:"axiom_set,omitempty"`
	AxiomSetName string `json:"axiom_set_name,omitempty"`
	// Raw are fully specified dependence queries answered directly against
	// AxiomSet, bypassing program parsing and analysis.
	Raw []RawQuery `json:"raw,omitempty"`

	// TimeoutMS, when positive, bounds each query's proof search in
	// milliseconds (capped by the server's MaxDeadline).  Zero selects the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineMS, when positive, bounds the whole request in milliseconds
	// (capped by the server's MaxDeadline).  Zero selects the server cap.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Verify re-checks every prover-backed No with the independent proof
	// checker.
	Verify bool `json:"verify,omitempty"`
	// AssumeInvariants enables §5's "full" analysis (loops are assumed to
	// re-establish axioms despite structural modifications).
	AssumeInvariants bool `json:"assume_invariants,omitempty"`
}

// RawQuery is one fully specified dependence question: does the T access
// depend on the S access?  Paths are pathexpr syntax; Relation describes
// the two anchor handles when they differ ("same" when the handle names are
// equal, "distinct" when they are known to denote different vertices,
// "unknown" when nothing is known — defaulting to "same" iff the handle
// names are equal, else "unknown").
type RawQuery struct {
	SHandle string `json:"s_handle"`
	SPath   string `json:"s_path"`
	SField  string `json:"s_field"`
	SWrite  bool   `json:"s_write,omitempty"`

	THandle string `json:"t_handle"`
	TPath   string `json:"t_path"`
	TField  string `json:"t_field"`
	TWrite  bool   `json:"t_write,omitempty"`

	Relation string `json:"relation,omitempty"`
}

// QueryResult is one expanded dependence query's verdict.
type QueryResult struct {
	// Line indexes the request's Queries slice (program mode) or Raw slice
	// (raw mode) this result answers.
	Line int `json:"line"`
	// Query echoes the originating query line (program mode) or a rendering
	// of the raw query.
	Query string `json:"query"`
	// S and T render the two accesses.
	S string `json:"s"`
	T string `json:"t"`
	// Result is "no" / "maybe" / "yes"; Kind the dependence kind.
	Result string `json:"result"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
}

// BatchStats reports the request's cost and the warm-cache state it ran
// against.
type BatchStats struct {
	Queries   int   `json:"queries"`
	ElapsedUS int64 `json:"elapsed_us"`
	// ServiceUS is the server-side service time for the whole request —
	// parse, analysis, engine acquisition (including a cold build), and the
	// batch run — excluding admission queueing.  Cold-vs-warm comparisons
	// should use this rather than client-observed latency, which folds in
	// queue wait and connection effects.
	ServiceUS int64 `json:"service_us"`
	// ColdEngine reports whether this request built the engine (first
	// sighting of its axiom set since startup or since LRU reclamation).
	ColdEngine bool   `json:"cold_engine"`
	AxiomSet   string `json:"axiom_set"`
	// Engine-cumulative counters (across all requests sharing the axiom
	// set), for observing warm-up without scraping /statz.
	MemoHits    int64 `json:"memo_hits"`
	MemoLookups int64 `json:"memo_lookups"`
	DFAHits     int64 `json:"dfa_hits"`
	DFALookups  int64 `json:"dfa_lookups"`
	Timeouts    int64 `json:"timeouts"`
	// TraceID identifies this request's trace (the same id the traceparent
	// response header carries).
	TraceID string `json:"trace_id,omitempty"`
	// DegradedQueries counts this request's queries degraded toward Maybe
	// (all three reasons); DeadlineExpired the subset degraded because the
	// request deadline passed.
	DegradedQueries int64 `json:"degraded_queries,omitempty"`
	DeadlineExpired int64 `json:"deadline_expired,omitempty"`
}

// BatchResponse is the JSON body answering POST /v1/batch.
type BatchResponse struct {
	Results []QueryResult `json:"results"`
	// Dependent reports whether any query answered other than No (the
	// aptdep exit-status convention).
	Dependent bool       `json:"dependent"`
	Stats     BatchStats `json:"stats"`
}

// ErrorResponse is the JSON body of every non-200 answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WriteJSON writes v as an indented JSON body with the given status.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hanging up is its problem
}

// WriteJSONError writes the protocol's error body.
func WriteJSONError(w http.ResponseWriter, code int, msg string) {
	WriteJSON(w, code, ErrorResponse{Error: msg})
}

// ClampMS converts a client-supplied millisecond budget to a duration in
// (0, max]; non-positive selects max.
func ClampMS(ms int64, max time.Duration) time.Duration {
	if ms <= 0 {
		return max
	}
	d := time.Duration(ms) * time.Millisecond
	if d > max {
		return max
	}
	return d
}
