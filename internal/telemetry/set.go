package telemetry

import (
	"fmt"
	"strings"
	"time"
)

// Set bundles a metrics Registry with an optional TraceWriter — the single
// handle threaded through prover.Options, analysis.Options, parallel.Pool,
// and the CLIs.  A nil *Set is the disabled default: every method no-ops
// and every instrument it hands out is nil (itself a no-op).
type Set struct {
	metrics *Registry
	trace   *TraceWriter
}

// New bundles reg and tr; either may be nil to disable that half.
func New(reg *Registry, tr *TraceWriter) *Set {
	return &Set{metrics: reg, trace: tr}
}

// Enabled reports whether any instrumentation is active.
func (s *Set) Enabled() bool {
	return s != nil && (s.metrics != nil || s.trace != nil)
}

// Metrics returns the registry (nil when disabled).
func (s *Set) Metrics() *Registry {
	if s == nil {
		return nil
	}
	return s.metrics
}

// Trace returns the trace writer (nil when disabled).
func (s *Set) Trace() *TraceWriter {
	if s == nil {
		return nil
	}
	return s.trace
}

// TraceEnabled reports whether trace events will be written.  Hot paths
// guard expensive attribute construction (goal rendering, time stamps)
// behind this.
func (s *Set) TraceEnabled() bool { return s != nil && s.trace != nil }

// Counter resolves a named counter (nil when metrics are disabled).
func (s *Set) Counter(name string) *Counter { return s.Metrics().Counter(name) }

// Max resolves a named maximum tracker (nil when metrics are disabled).
func (s *Set) Max(name string) *Max { return s.Metrics().Max(name) }

// Histogram resolves a named histogram (nil when metrics are disabled).
func (s *Set) Histogram(name string) *Histogram { return s.Metrics().Histogram(name) }

// Window resolves a named sliding-window histogram (nil when metrics are
// disabled).
func (s *Set) Window(name string) *WindowHistogram { return s.Metrics().Window(name) }

// Emit writes one trace event (no-op when tracing is disabled).
func (s *Set) Emit(event string, attrs ...Attr) {
	if s == nil || s.trace == nil {
		return
	}
	s.trace.Emit(event, attrs...)
}

// Begin opens a span (the zero no-op Span when tracing is disabled).
func (s *Set) Begin(event string) Span {
	if s == nil {
		return Span{}
	}
	return s.trace.Begin(event)
}

// PhaseTiming is one completed pipeline phase.
type PhaseTiming struct {
	Name string
	Dur  time.Duration
}

// Phases times named sequential pipeline phases (parse, analyze, query, …),
// recording each as a trace event and a *_ns histogram, and keeps the
// ordered wall-clock list for the -stats summary.  Works with a nil Set
// (timings are still collected locally).  Not safe for concurrent use.
type Phases struct {
	tel *Set
	rec []PhaseTiming
}

// NewPhases returns a phase timer reporting through tel (which may be nil).
func NewPhases(tel *Set) *Phases { return &Phases{tel: tel} }

// Run times f as the named phase, propagating its error.
func (p *Phases) Run(name string, f func() error) error {
	start := time.Now()
	err := f()
	d := time.Since(start)
	p.rec = append(p.rec, PhaseTiming{Name: name, Dur: d})
	p.tel.Histogram("pipeline." + name + "_ns").Observe(d.Nanoseconds())
	p.tel.Emit("pipeline.phase", String("phase", name), DurUS("dur_us", d), Bool("ok", err == nil))
	return err
}

// Timings returns the phases completed so far, in order.
func (p *Phases) Timings() []PhaseTiming { return p.rec }

// Summary renders the wall-clock-per-phase table.
func (p *Phases) Summary() string {
	var b strings.Builder
	b.WriteString("wall-clock per phase:\n")
	var total time.Duration
	for _, r := range p.rec {
		fmt.Fprintf(&b, "  %-44s %12v\n", r.Name, r.Dur.Round(time.Microsecond))
		total += r.Dur
	}
	fmt.Fprintf(&b, "  %-44s %12v\n", "total", total.Round(time.Microsecond))
	return b.String()
}
