package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentParseFormatRoundTrip(t *testing.T) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	tc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected a valid header", h)
	}
	if tc.TraceID.String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %s", tc.TraceID)
	}
	if tc.SpanID.String() != "b7ad6b7169203331" {
		t.Errorf("span id = %s", tc.SpanID)
	}
	if tc.Flags != 1 {
		t.Errorf("flags = %#x, want 1", tc.Flags)
	}
	if got := tc.Traceparent(); got != h {
		t.Errorf("round trip = %q, want %q", got, h)
	}

	minted := NewTraceContext()
	if minted.TraceID.IsZero() || minted.SpanID.IsZero() {
		t.Error("minted context has zero ids")
	}
	back, ok := ParseTraceparent(minted.Traceparent())
	if !ok || back != minted {
		t.Errorf("minted context does not round-trip: %v vs %v", back, minted)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"garbage",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",     // missing flags
		"01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // unsupported version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span id
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",  // non-hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // trailing junk
		"00_0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // bad separator
	} {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted a malformed header", h)
		}
	}
	// Version 00 followed by a proper extension separator is still a parse
	// of the leading fields per the spec's forward-compat rule... except
	// version 00 defines no extra fields, so we reject it (callers mint a
	// fresh context, the safe behavior either way).
	if _, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); ok {
		t.Error("version 00 with trailing fields accepted")
	}
}

func TestRequestTraceSpanTree(t *testing.T) {
	tc := NewTraceContext()
	rt := NewRequestTrace(tc)
	root := rt.StartSpan("root", tc.SpanID)
	child := rt.StartSpan("child", root.ID())
	child.End(String("k", "v"), Int("n", 7), Bool("b", true), Float64("f", 1.5))
	root.End()

	spans := rt.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "child" || spans[1].Name != "root" {
		t.Errorf("completion order = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent = %q, root id = %q", spans[0].Parent, spans[1].ID)
	}
	if spans[1].Parent != tc.SpanID.String() {
		t.Errorf("root parent = %q, want the remote span %q", spans[1].Parent, tc.SpanID)
	}
	attrs := spans[0].Attrs
	if attrs["k"] != "v" || attrs["n"] != int64(7) || attrs["b"] != true || attrs["f"] != 1.5 {
		t.Errorf("attrs = %#v", attrs)
	}
	if rt.DroppedSpans() != 0 {
		t.Errorf("dropped = %d", rt.DroppedSpans())
	}
}

func TestRequestTraceSpanCap(t *testing.T) {
	rt := NewRequestTrace(NewTraceContext())
	for i := 0; i < maxRequestSpans+10; i++ {
		rt.StartSpan("s", SpanID{}).End()
	}
	if got := len(rt.Spans()); got != maxRequestSpans {
		t.Errorf("spans = %d, want cap %d", got, maxRequestSpans)
	}
	if got := rt.DroppedSpans(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
}

func TestRequestTraceDegradedCounts(t *testing.T) {
	rt := NewRequestTrace(NewTraceContext())
	rt.NoteDegraded(DegradeQueryTimeout)
	rt.NoteDegraded(DegradeCanceled)
	rt.NoteDegraded(DegradeCanceled)
	got := rt.DegradedCounts()
	want := [NumDegradeReasons]int64{DegradeQueryTimeout: 1, DegradeCanceled: 2}
	if got != want {
		t.Errorf("counts = %v, want %v", got, want)
	}
	if rt.DegradedTotal() != 3 {
		t.Errorf("total = %d, want 3", rt.DegradedTotal())
	}
}

func TestNilRequestTraceIsNoOp(t *testing.T) {
	var rt *RequestTrace
	sp := rt.StartSpan("x", SpanID{})
	sp.End(Int("n", 1)) // must not panic
	rt.NoteDegraded(DegradeCanceled)
	if rt.Spans() != nil || rt.DegradedTotal() != 0 || rt.TraceIDString() != "" {
		t.Error("nil RequestTrace is not a clean no-op")
	}

	// A context that never saw WithTraceScope yields nil without drama.
	gotRT, parent := TraceScope(context.Background())
	if gotRT != nil || !parent.IsZero() {
		t.Errorf("TraceScope(bare ctx) = %v, %v", gotRT, parent)
	}
}

func TestWithTraceScope(t *testing.T) {
	rt := NewRequestTrace(NewTraceContext())
	sp := rt.StartSpan("parent", SpanID{})
	ctx := WithTraceScope(context.Background(), rt, sp.ID())
	gotRT, gotParent := TraceScope(ctx)
	if gotRT != rt || gotParent != sp.ID() {
		t.Errorf("TraceScope = %v, %v; want the attached pair", gotRT, gotParent)
	}
}

func TestDegradeReasonStrings(t *testing.T) {
	want := []string{"query_timeout", "request_deadline", "canceled"}
	for r := DegradeReason(0); r < NumDegradeReasons; r++ {
		if r.String() != want[r] {
			t.Errorf("reason %d = %q, want %q", r, r.String(), want[r])
		}
		if strings.ContainsAny(r.String(), ` "\`) {
			t.Errorf("reason %q unusable as a Prometheus label", r.String())
		}
	}
	if DegradeReason(99).String() != "unknown" {
		t.Error("out-of-range reason should stringify as unknown")
	}
}
