package telemetry

import (
	"sync"
	"testing"
	"time"
)

func rec(id string) func() *FlightRecord {
	return func() *FlightRecord { return &FlightRecord{TraceID: id} }
}

func TestFlightRecorderKeepsKSlowest(t *testing.T) {
	f := NewFlightRecorder(3, 8)
	durs := []time.Duration{5, 9, 1, 7, 3, 8} // ms
	for i, d := range durs {
		f.Record(d*time.Millisecond, false, rec(string(rune('a'+i))))
	}
	snap := f.Snapshot()
	if len(snap.Slowest) != 3 {
		t.Fatalf("slowest holds %d, want 3", len(snap.Slowest))
	}
	// 9, 8, 7 ms — slowest first.
	want := []int64{9000, 8000, 7000}
	for i, r := range snap.Slowest {
		if r.DurUS != want[i] {
			t.Errorf("slowest[%d] = %dus, want %dus", i, r.DurUS, want[i])
		}
	}
	if len(snap.Degraded) != 0 || snap.DegradedRecorded != 0 {
		t.Errorf("degraded = %d/%d, want none", len(snap.Degraded), snap.DegradedRecorded)
	}
}

// Once the slow set fills, requests under the floor must not invoke the
// build callback at all — that laziness is the fast path's zero-alloc
// guarantee.
func TestFlightRecorderLazyBuild(t *testing.T) {
	f := NewFlightRecorder(2, 8)
	f.Record(10*time.Millisecond, false, rec("a"))
	f.Record(20*time.Millisecond, false, rec("b"))
	called := false
	f.Record(time.Millisecond, false, func() *FlightRecord {
		called = true
		return &FlightRecord{}
	})
	if called {
		t.Error("build ran for a fast, non-degraded request")
	}
	// A nil build result is discarded without recording.
	f.Record(time.Hour, false, func() *FlightRecord { return nil })
	if snap := f.Snapshot(); len(snap.Slowest) != 2 {
		t.Errorf("nil build changed the slow set: %d records", len(snap.Slowest))
	}
}

func TestFlightRecorderDegradedRing(t *testing.T) {
	f := NewFlightRecorder(1, 4)
	ids := []string{"a", "b", "c", "d", "e", "f"}
	for i, id := range ids {
		// All fast: only the degraded ring retains them (plus one slow slot).
		f.Record(time.Duration(i+1)*time.Microsecond, true, rec(id))
	}
	snap := f.Snapshot()
	if snap.DegradedRecorded != int64(len(ids)) {
		t.Errorf("recorded = %d, want %d", snap.DegradedRecorded, len(ids))
	}
	if len(snap.Degraded) != 4 {
		t.Fatalf("ring holds %d, want its capacity 4", len(snap.Degraded))
	}
	// Most recent first: f, e, d, c.
	for i, want := range []string{"f", "e", "d", "c"} {
		if snap.Degraded[i].TraceID != want {
			t.Errorf("degraded[%d] = %q, want %q", i, snap.Degraded[i].TraceID, want)
		}
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(time.Second, true, func() *FlightRecord {
		t.Error("nil recorder invoked build")
		return nil
	})
	if snap := f.Snapshot(); snap.K != 0 || snap.RingSize != 0 || snap.Slowest != nil {
		t.Errorf("nil snapshot = %+v", snap)
	}
	if f.K() != 0 || f.RingSize() != 0 {
		t.Error("nil accessors not zero")
	}
}

func TestFlightRecorderDefaultsAndRounding(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	if f.K() != DefaultFlightK || f.RingSize() != DefaultFlightRing {
		t.Errorf("defaults = %d/%d", f.K(), f.RingSize())
	}
	if f := NewFlightRecorder(1, 5); f.RingSize() != 8 {
		t.Errorf("ring size = %d, want next power of two 8", f.RingSize())
	}
}

// TestFlightRecorderConcurrent is the obs-check race soak (run with
// -race -count=50): concurrent recorders and snapshotters must never race,
// lose a degraded record, or break the slow set's ordering invariant.
func TestFlightRecorderConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 50
		k         = 4
		ring      = 1024 // outsizes writers*perWriter degraded records
	)
	f := NewFlightRecorder(k, ring)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshotters.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					snap := f.Snapshot()
					if len(snap.Slowest) > k {
						t.Errorf("slow set %d > k %d", len(snap.Slowest), k)
						return
					}
					for i := 1; i < len(snap.Slowest); i++ {
						if snap.Slowest[i].DurUS > snap.Slowest[i-1].DurUS {
							t.Error("slow set out of order")
							return
						}
					}
				}
			}
		}()
	}
	var wWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		wWG.Add(1)
		go func(w int) {
			defer wWG.Done()
			for i := 0; i < perWriter; i++ {
				id := string(rune('A'+w)) + "-" + string(rune('0'+i%10))
				deg := i%2 == 0
				f.Record(time.Duration(w*perWriter+i)*time.Microsecond, deg,
					func() *FlightRecord { return &FlightRecord{TraceID: id, DegradedCanceled: boolToI64(deg)} })
			}
		}(w)
	}
	wWG.Wait()
	close(stop)
	wg.Wait()

	snap := f.Snapshot()
	wantDegraded := int64(writers * perWriter / 2)
	if snap.DegradedRecorded != wantDegraded {
		t.Errorf("degraded recorded = %d, want %d", snap.DegradedRecorded, wantDegraded)
	}
	if int64(len(snap.Degraded)) != wantDegraded {
		t.Errorf("ring returned %d, want all %d (ring larger than load)", len(snap.Degraded), wantDegraded)
	}
	if len(snap.Slowest) != k {
		t.Errorf("slow set = %d, want full at %d", len(snap.Slowest), k)
	}
	// The k slowest durations overall are deterministic: the top k of
	// 0..writers*perWriter-1 microseconds, regardless of arrival order.
	top := int64(writers*perWriter - 1)
	for i, r := range snap.Slowest {
		if want := top - int64(i); r.DurUS != want {
			t.Errorf("slowest[%d] = %dus, want %dus", i, r.DurUS, want)
		}
	}
}

func boolToI64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
