package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// The cumulative Histogram answers "since boot"; a WindowHistogram answers
// "lately".  A long-lived server's p99 since boot is dominated by its
// cold-start tail, which is exactly the number a dashboard must NOT show
// when asking "why did this degrade just now" — so /metrics exposes both.

// DefaultWindow is the sliding window Summary and Registry snapshots use.
const DefaultWindow = time.Minute

// windowCapacity is the sample ring size.  4096 recent samples bound both
// memory and the sort cost of a quantile query while keeping p99 over a
// one-minute window exact for up to ~68 requests/sec.
const windowCapacity = 4096

// windowSample is one ring slot: the observation and when it happened
// (nanoseconds since the histogram started, +1 so zero means "empty").
// The two fields are stored with separate atomics: a torn read can pair a
// fresh timestamp with a stale value, which at worst counts one old sample
// into the window — acceptable for quantile estimates and the price of a
// lock-free write path.
type windowSample struct {
	atNS atomic.Int64
	v    atomic.Int64
}

// WindowHistogram records recent observations in a lock-free ring and
// reports exact sample quantiles over a sliding time window.  Writes are
// two atomic stores and never allocate; quantile queries copy and sort the
// live window.  A nil *WindowHistogram is a valid no-op instrument.
type WindowHistogram struct {
	start   time.Time
	next    atomic.Uint64
	samples [windowCapacity]windowSample
}

// NewWindowHistogram returns an empty sliding-window histogram.
func NewWindowHistogram() *WindowHistogram {
	return &WindowHistogram{start: time.Now()}
}

// Observe records one value (negative values clamp to 0).
func (h *WindowHistogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s := &h.samples[(h.next.Add(1)-1)%windowCapacity]
	s.v.Store(v)
	s.atNS.Store(time.Since(h.start).Nanoseconds() + 1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *WindowHistogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// WindowSummary is a point-in-time digest of the observations inside the
// window: exact nearest-rank sample quantiles, not bucket bounds.
type WindowSummary struct {
	WindowMS int64 `json:"window_ms"`
	Count    int64 `json:"count"`
	P50      int64 `json:"p50"`
	P95      int64 `json:"p95"`
	P99      int64 `json:"p99"`
	Max      int64 `json:"max"`
}

// Summary digests the samples observed within the trailing window
// (zero value for a nil or empty histogram).
func (h *WindowHistogram) Summary(window time.Duration) WindowSummary {
	if window <= 0 {
		window = DefaultWindow
	}
	out := WindowSummary{WindowMS: window.Milliseconds()}
	if h == nil {
		return out
	}
	cutoff := time.Since(h.start).Nanoseconds() - window.Nanoseconds()
	n := h.next.Load()
	if n > windowCapacity {
		n = windowCapacity
	}
	vs := make([]int64, 0, n)
	for i := uint64(0); i < n; i++ {
		s := &h.samples[i]
		if at := s.atNS.Load(); at > 0 && at-1 >= cutoff {
			vs = append(vs, s.v.Load())
		}
	}
	if len(vs) == 0 {
		return out
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	out.Count = int64(len(vs))
	out.P50 = nearestRank(vs, 0.50)
	out.P95 = nearestRank(vs, 0.95)
	out.P99 = nearestRank(vs, 0.99)
	out.Max = vs[len(vs)-1]
	return out
}

// nearestRank returns the q-quantile of sorted by the nearest-rank method:
// the smallest value with at least ⌈q·n⌉ samples at or below it.  The rank
// is computed in exact integer arithmetic — q scaled to a rational over
// 10⁴ (quantiles here are specified to at most four decimals) — because
// the float truncate-then-compare version was one representation error
// away from an off-by-one rank at exact multiples like q=0.50, n even.
func nearestRank(sorted []int64, q float64) int64 {
	n := int64(len(sorted))
	num := int64(math.Round(q * 1e4))
	rank := (n*num + 9999) / 10000
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}
