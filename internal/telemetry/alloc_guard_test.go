//go:build !race

package telemetry

import (
	"context"
	"testing"
	"time"
)

// TestDisabledObservabilityAllocations is the allocation-regression guard
// for the "nil is off" discipline: with tracing disabled (nil *RequestTrace)
// and the flight recorder's floor above the request, the per-query and
// per-request hot paths must not allocate at all.  Gated out under the race
// detector, whose instrumentation adds allocations of its own.
func TestDisabledObservabilityAllocations(t *testing.T) {
	var rt *RequestTrace
	if got := testing.AllocsPerRun(200, func() {
		sp := rt.StartSpan("engine.worker", SpanID{})
		sp.End()
	}); got > 0 {
		t.Errorf("nil RequestTrace StartSpan/End allocates %.1f per call, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() {
		rt.NoteDegraded(DegradeQueryTimeout)
	}); got > 0 {
		t.Errorf("nil RequestTrace NoteDegraded allocates %.1f per call, want 0", got)
	}

	ctx := context.Background()
	if got := testing.AllocsPerRun(200, func() {
		if rt, _ := TraceScope(ctx); rt != nil {
			t.Fatal("bare context carries a trace scope")
		}
	}); got > 0 {
		t.Errorf("TraceScope on a bare context allocates %.1f per call, want 0", got)
	}

	// Flight recorder fast path: non-degraded requests below the floor
	// must return before touching the build callback or any lock.
	f := NewFlightRecorder(1, 8)
	f.Record(time.Second, false, func() *FlightRecord { return &FlightRecord{} })
	if got := testing.AllocsPerRun(200, func() {
		f.Record(time.Microsecond, false, func() *FlightRecord {
			t.Fatal("fast path invoked build")
			return nil
		})
	}); got > 0 {
		t.Errorf("flight-recorder fast path allocates %.1f per call, want 0", got)
	}
	var nilF *FlightRecorder
	if got := testing.AllocsPerRun(200, func() {
		nilF.Record(time.Hour, true, func() *FlightRecord { return &FlightRecord{} })
	}); got > 0 {
		t.Errorf("nil FlightRecorder Record allocates %.1f per call, want 0", got)
	}

	// Window histogram writes are two atomic stores — no allocation even
	// when enabled.
	w := NewWindowHistogram()
	if got := testing.AllocsPerRun(200, func() {
		w.Observe(123)
	}); got > 0 {
		t.Errorf("WindowHistogram.Observe allocates %.1f per call, want 0", got)
	}
	var nilW *WindowHistogram
	if got := testing.AllocsPerRun(200, func() {
		nilW.Observe(123)
	}); got > 0 {
		t.Errorf("nil WindowHistogram.Observe allocates %.1f per call, want 0", got)
	}
}
