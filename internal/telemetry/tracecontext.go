package telemetry

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync"
	"time"
)

// This file is the request-scoped half of the telemetry layer: W3C Trace
// Context (traceparent) propagation and a per-request span-tree collector.
// The process-lifetime Registry answers "how is the server doing"; a
// RequestTrace answers "what happened to *this* request" — the span tree it
// collects is what the flight recorder retains for slow and degraded
// requests, and the trace IDs it carries are what lets a future router
// tier's spans and its backends' spans correlate into one tree.
//
// The "nil is off" discipline holds throughout: a nil *RequestTrace hands
// out no-op spans, NoteDegraded no-ops, and TraceScope on a context that
// never saw WithTraceScope returns nil without allocating.

// TraceID is a 128-bit W3C trace id.
type TraceID [16]byte

// SpanID is a 64-bit W3C span (parent) id.
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// TraceContext is one W3C traceparent: the trace the request belongs to,
// the caller's span, and the trace flags (bit 0 = sampled).
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
	Flags   byte
}

// NewTraceContext mints a fresh sampled trace context with random ids.
// (math/rand/v2's global generator is fine here: trace ids need uniqueness,
// not unpredictability.)
func NewTraceContext() TraceContext {
	var tc TraceContext
	putUint64(tc.TraceID[0:8], rand.Uint64())
	putUint64(tc.TraceID[8:16], rand.Uint64())
	tc.SpanID = newSpanID()
	tc.Flags = 1
	return tc
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		putUint64(id[:], rand.Uint64())
	}
	return id
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>").  ok is false for a malformed header,
// an unsupported version, or all-zero ids; callers then mint their own
// context rather than joining a broken trace.
func ParseTraceparent(h string) (tc TraceContext, ok bool) {
	// Version 00 defines exactly four fields; anything longer (even a
	// well-formed "-extra" suffix) is rejected and the caller mints a
	// fresh context instead of joining a trace it can't fully parse.
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(h[3:35])); err != nil {
		return TraceContext{}, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(h[36:52])); err != nil {
		return TraceContext{}, false
	}
	var fl [1]byte
	if _, err := hex.Decode(fl[:], []byte(h[53:55])); err != nil {
		return TraceContext{}, false
	}
	tc.Flags = fl[0]
	if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
		return TraceContext{}, false
	}
	return tc, true
}

// Traceparent renders the context as a W3C traceparent header value.
func (tc TraceContext) Traceparent() string {
	b := make([]byte, 0, 55)
	b = append(b, "00-"...)
	b = hex.AppendEncode(b, tc.TraceID[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, tc.SpanID[:])
	b = append(b, '-')
	const hexdigits = "0123456789abcdef"
	b = append(b, hexdigits[tc.Flags>>4], hexdigits[tc.Flags&0xf])
	return string(b)
}

// DegradeReason says why a query's answer degraded toward Maybe — the
// three cases the engine's interrupt guard distinguishes.
type DegradeReason uint8

const (
	// DegradeQueryTimeout: the per-query proof-search timeout expired.
	DegradeQueryTimeout DegradeReason = iota
	// DegradeRequestDeadline: the whole-request deadline passed.
	DegradeRequestDeadline
	// DegradeCanceled: the batch context was canceled outright.
	DegradeCanceled

	// NumDegradeReasons sizes per-reason arrays.
	NumDegradeReasons
)

// String returns the reason's metric-label spelling.
func (r DegradeReason) String() string {
	switch r {
	case DegradeQueryTimeout:
		return "query_timeout"
	case DegradeRequestDeadline:
		return "request_deadline"
	case DegradeCanceled:
		return "canceled"
	}
	return "unknown"
}

// maxRequestSpans bounds one request's span tree so a pathological batch
// (thousands of prover calls) cannot hold unbounded memory in the flight
// recorder; spans beyond the cap are counted, not kept.
const maxRequestSpans = 4096

// SpanRecord is one completed span of a request's tree, JSON-ready for the
// flight recorder and /debug/flightrecorder.
type SpanRecord struct {
	Name string `json:"name"`
	// ID and Parent are hex span ids; the root span's Parent is the
	// remote caller's span id (from traceparent) or empty.
	ID      string `json:"span_id"`
	Parent  string `json:"parent_id,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// Attrs holds the attributes passed to ActiveSpan.End.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// RequestTrace collects one request's span tree and its degradation
// profile.  It is safe for concurrent use (engine workers and the prover
// finish spans in parallel); a nil *RequestTrace is a valid, disabled
// collector.
type RequestTrace struct {
	tc    TraceContext
	start time.Time

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int

	degMu    sync.Mutex
	degraded [NumDegradeReasons]int64
}

// NewRequestTrace starts collecting under the given trace context (the
// client's traceparent, or a freshly minted context for headerless
// requests).
func NewRequestTrace(tc TraceContext) *RequestTrace {
	return &RequestTrace{tc: tc, start: time.Now()}
}

// Context returns the trace context the request runs under.
func (rt *RequestTrace) Context() TraceContext {
	if rt == nil {
		return TraceContext{}
	}
	return rt.tc
}

// TraceIDString returns the hex trace id ("" when disabled).
func (rt *RequestTrace) TraceIDString() string {
	if rt == nil {
		return ""
	}
	return rt.tc.TraceID.String()
}

// StartSpan opens a span parented under parent (use the incoming
// TraceContext.SpanID for the root).  The returned ActiveSpan is a value;
// it must be End()ed to appear in the tree.
func (rt *RequestTrace) StartSpan(name string, parent SpanID) ActiveSpan {
	if rt == nil {
		return ActiveSpan{}
	}
	return ActiveSpan{rt: rt, name: name, id: newSpanID(), parent: parent, start: time.Now()}
}

// NoteDegraded records one query degraded toward Maybe for the given
// reason.
func (rt *RequestTrace) NoteDegraded(r DegradeReason) {
	if rt == nil || r >= NumDegradeReasons {
		return
	}
	rt.degMu.Lock()
	rt.degraded[r]++
	rt.degMu.Unlock()
}

// DegradedCounts returns the per-reason degraded-query counts.
func (rt *RequestTrace) DegradedCounts() [NumDegradeReasons]int64 {
	if rt == nil {
		return [NumDegradeReasons]int64{}
	}
	rt.degMu.Lock()
	defer rt.degMu.Unlock()
	return rt.degraded
}

// DegradedTotal returns the total count of degraded queries.
func (rt *RequestTrace) DegradedTotal() int64 {
	var total int64
	for _, n := range rt.DegradedCounts() {
		total += n
	}
	return total
}

// Spans returns a copy of the completed spans, in completion order.
func (rt *RequestTrace) Spans() []SpanRecord {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]SpanRecord, len(rt.spans))
	copy(out, rt.spans)
	return out
}

// DroppedSpans reports how many spans the per-request cap discarded.
func (rt *RequestTrace) DroppedSpans() int {
	if rt == nil {
		return 0
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.dropped
}

func (rt *RequestTrace) record(rec SpanRecord) {
	rt.mu.Lock()
	if len(rt.spans) >= maxRequestSpans {
		rt.dropped++
	} else {
		rt.spans = append(rt.spans, rec)
	}
	rt.mu.Unlock()
}

// ActiveSpan is one in-flight span of a RequestTrace.  The zero ActiveSpan
// (and any span from a nil trace) is a valid no-op.
type ActiveSpan struct {
	rt     *RequestTrace
	name   string
	id     SpanID
	parent SpanID
	start  time.Time
}

// ID returns the span's id, to parent child spans under it.
func (s ActiveSpan) ID() SpanID { return s.id }

// End completes the span, recording it with its duration and attributes.
func (s ActiveSpan) End(attrs ...Attr) {
	if s.rt == nil {
		return
	}
	rec := SpanRecord{
		Name:    s.name,
		ID:      s.id.String(),
		StartUS: s.start.Sub(s.rt.start).Microseconds(),
		DurUS:   time.Since(s.start).Microseconds(),
	}
	if !s.parent.IsZero() {
		rec.Parent = s.parent.String()
	}
	if len(attrs) > 0 {
		rec.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			rec.Attrs[a.Key] = a.value()
		}
	}
	s.rt.record(rec)
}

// value unboxes the attribute for JSON rendering (flight recorder spans).
func (a Attr) value() any {
	switch a.kind {
	case attrString:
		return a.s
	case attrInt:
		return a.i
	case attrFloat:
		return a.f
	case attrBool:
		return a.i != 0
	}
	return nil
}

// traceScopeKey carries a (*RequestTrace, parent span) pair through a
// context so layers that only see a context.Context (the engine, and the
// prover below it) can attach their spans to the right parent.
type traceScopeKey struct{}

type traceScope struct {
	rt     *RequestTrace
	parent SpanID
}

// WithTraceScope returns a context carrying rt with parent as the span
// under which callees should parent their spans.
func WithTraceScope(ctx context.Context, rt *RequestTrace, parent SpanID) context.Context {
	return context.WithValue(ctx, traceScopeKey{}, traceScope{rt: rt, parent: parent})
}

// TraceScope extracts the request trace and parent span from ctx,
// returning (nil, zero) — without allocating — when none was attached.
func TraceScope(ctx context.Context) (*RequestTrace, SpanID) {
	if v := ctx.Value(traceScopeKey{}); v != nil {
		sc := v.(traceScope)
		return sc.rt, sc.parent
	}
	return nil, SpanID{}
}
