package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestWindowHistogramQuantiles(t *testing.T) {
	h := NewWindowHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Summary(DefaultWindow)
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// Nearest rank over 1..100: p50 = 50th value = 50, p95 = 95, p99 = 99.
	if s.P50 != 50 || s.P95 != 95 || s.P99 != 99 || s.Max != 100 {
		t.Errorf("summary = %+v, want p50=50 p95=95 p99=99 max=100", s)
	}
	if s.WindowMS != DefaultWindow.Milliseconds() {
		t.Errorf("window_ms = %d", s.WindowMS)
	}
}

func TestWindowHistogramSingleSample(t *testing.T) {
	h := NewWindowHistogram()
	h.Observe(42)
	s := h.Summary(DefaultWindow)
	if s.Count != 1 || s.P50 != 42 || s.P99 != 42 || s.Max != 42 {
		t.Errorf("summary = %+v, want every quantile = the one sample", s)
	}
}

func TestWindowHistogramExpiry(t *testing.T) {
	h := NewWindowHistogram()
	h.Observe(1000)
	time.Sleep(30 * time.Millisecond)
	h.Observe(5)
	// A 10ms window holds only the recent sample.
	s := h.Summary(10 * time.Millisecond)
	if s.Count != 1 || s.Max != 5 {
		t.Errorf("summary = %+v, want only the recent sample", s)
	}
	// A wide window still sees both.
	if s := h.Summary(time.Minute); s.Count != 2 || s.Max != 1000 {
		t.Errorf("wide summary = %+v, want both samples", s)
	}
}

func TestWindowHistogramWrap(t *testing.T) {
	h := NewWindowHistogram()
	for i := 0; i < windowCapacity+500; i++ {
		h.Observe(7)
	}
	s := h.Summary(DefaultWindow)
	if s.Count != windowCapacity {
		t.Errorf("count = %d, want the ring capacity %d", s.Count, windowCapacity)
	}
}

func TestWindowHistogramNilAndEmpty(t *testing.T) {
	var h *WindowHistogram
	h.Observe(1) // must not panic
	h.ObserveDuration(time.Second)
	if s := h.Summary(DefaultWindow); s.Count != 0 || s.P99 != 0 {
		t.Errorf("nil summary = %+v", s)
	}
	if s := NewWindowHistogram().Summary(DefaultWindow); s.Count != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

// Concurrent writers against a reader: the lock-free ring must stay
// race-clean (exercised by `go test -race`) and every summary must stay
// inside the observed value range.
func TestWindowHistogramConcurrent(t *testing.T) {
	h := NewWindowHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(int64(1 + i%100))
			}
		}(w)
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Summary(DefaultWindow)
				if s.Count > 0 && (s.P50 < 1 || s.Max > 100) {
					t.Errorf("summary outside observed range: %+v", s)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if s := h.Summary(DefaultWindow); s.Count == 0 {
		t.Error("no samples visible after concurrent writes")
	}
}

func TestRegistryWindowInSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Window("query_ns").Observe(1500)
	r.Window("query_ns").Observe(2500)
	snap := r.Snapshot()
	w, ok := snap.Windows["query_ns"]
	if !ok {
		t.Fatalf("snapshot lacks the window (have %v)", snap.Windows)
	}
	if w.Count != 2 || w.Max != 2500 {
		t.Errorf("window summary = %+v", w)
	}
	if r.Window("query_ns") != r.Window("query_ns") {
		t.Error("Window is not idempotent per name")
	}
}

// TestNearestRankAgainstBruteForce is the regression property test for the
// float-arithmetic rank bug: for every population size up to the ring
// capacity and each quantile the summary publishes, the selected value must
// equal the brute-force nearest-rank definition — the smallest rank r with
// r·10⁴ ≥ n·(q·10⁴).  The old ⌈q·n⌉-via-float version violated this at
// exact multiples (q=0.50 with even n) when the product rounded up a ulp.
func TestNearestRankAgainstBruteForce(t *testing.T) {
	quantiles := []struct {
		q   float64
		num int64 // q scaled to the rational numerator over 10⁴
	}{
		{0.50, 5000},
		{0.95, 9500},
		{0.99, 9900},
	}
	for n := 1; n <= 4096; n++ {
		// sorted[i] = i+1, so sorted[r-1] == r: the selected value IS the rank.
		sorted := make([]int64, n)
		for i := range sorted {
			sorted[i] = int64(i + 1)
		}
		for _, qc := range quantiles {
			want := int64(1)
			for want*10000 < int64(n)*qc.num {
				want++
			}
			if got := nearestRank(sorted, qc.q); got != want {
				t.Fatalf("nearestRank(n=%d, q=%g) = %d, brute force says %d", n, qc.q, got, want)
			}
		}
	}
}
