package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder retains the forensic record — span tree, degradation
// profile, cache-hit profile — of the requests worth asking "why was this
// slow" about: the K slowest requests seen, plus every request that
// degraded toward Maybe via timeout, deadline, or cancellation, in a
// bounded ring.  A timed-out query and a genuinely undecidable one produce
// the same Maybe on the wire; the recorder is what keeps them
// distinguishable after the response has left the process.
//
// The fast path — a request that is neither degraded nor slower than the
// current K-th slowest — is one atomic load and a compare: no locks, no
// allocations (the record is built by a callback that only runs when the
// request is retained; guarded by TestObservabilityAllocs).  The degraded
// ring is lock-free (atomic cursor + atomic slot pointers); only the small
// K-slowest set takes a mutex, and only when a request actually qualifies.
//
// A nil *FlightRecorder is a valid, disabled recorder.

// DefaultFlightK and DefaultFlightRing size a recorder when the caller
// passes zero.
const (
	DefaultFlightK    = 8
	DefaultFlightRing = 64
)

// FlightRecord is one retained request.  Records are immutable once
// handed to Record; snapshots share them.
type FlightRecord struct {
	// TraceID and Traceparent tie the record to the request's trace.
	TraceID     string `json:"trace_id,omitempty"`
	Traceparent string `json:"traceparent,omitempty"`
	// UnixUS is the request's wall-clock start; DurUS its total latency.
	UnixUS int64 `json:"unix_us"`
	DurUS  int64 `json:"dur_us"`
	// Per-reason degraded-query counts (the interrupt guard's three cases).
	DegradedQueryTimeout    int64 `json:"degraded_query_timeout,omitempty"`
	DegradedRequestDeadline int64 `json:"degraded_request_deadline,omitempty"`
	DegradedCanceled        int64 `json:"degraded_canceled,omitempty"`
	// Spans is the request's span tree; DroppedSpans how many the
	// per-request cap discarded.
	Spans        []SpanRecord `json:"spans,omitempty"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	// Meta carries caller-specific context (aptserved attaches the axiom
	// set, query count, status, and the request's cache-hit deltas).
	Meta any `json:"meta,omitempty"`
}

// Degraded reports whether any query of the request degraded.
func (r *FlightRecord) Degraded() bool {
	return r.DegradedQueryTimeout+r.DegradedRequestDeadline+r.DegradedCanceled > 0
}

// FlightRecorder implements the retention policy above.
type FlightRecorder struct {
	k int

	// floorUS is the duration a non-degraded request must exceed to enter
	// the K-slowest set: 0 until the set fills, then the set's minimum.
	floorUS atomic.Int64

	mu   sync.Mutex
	slow []*FlightRecord // sorted ascending by DurUS, len ≤ k

	mask    uint64
	cursor  atomic.Uint64
	ring    []atomic.Pointer[FlightRecord]
	slowRec atomic.Int64
	degRec  atomic.Int64
}

// NewFlightRecorder keeps the k slowest requests and the last ring
// degraded requests (ring is rounded up to a power of two; zero arguments
// select the defaults).
func NewFlightRecorder(k, ring int) *FlightRecorder {
	if k <= 0 {
		k = DefaultFlightK
	}
	if ring <= 0 {
		ring = DefaultFlightRing
	}
	size := 1
	for size < ring {
		size <<= 1
	}
	return &FlightRecorder{
		k:    k,
		mask: uint64(size - 1),
		ring: make([]atomic.Pointer[FlightRecord], size),
	}
}

// K returns the slowest-request retention count (0 for a nil recorder).
func (f *FlightRecorder) K() int {
	if f == nil {
		return 0
	}
	return f.k
}

// RingSize returns the degraded-request ring capacity.
func (f *FlightRecorder) RingSize() int {
	if f == nil {
		return 0
	}
	return len(f.ring)
}

// Record offers one finished request.  build is invoked — once — only when
// the request qualifies for retention, so callers can defer assembling the
// span tree and metadata off the fast path.  degraded requests are always
// retained (in the ring); others only when dur beats the current K-th
// slowest.
func (f *FlightRecorder) Record(dur time.Duration, degraded bool, build func() *FlightRecord) {
	if f == nil {
		return
	}
	durUS := dur.Microseconds()
	if !degraded && durUS < f.floorUS.Load() {
		return // fast path: one atomic load, no allocation
	}
	rec := build()
	if rec == nil {
		return
	}
	rec.DurUS = durUS
	if degraded {
		f.degRec.Add(1)
		f.ring[(f.cursor.Add(1)-1)&f.mask].Store(rec)
	}
	f.mu.Lock()
	// Re-check under the lock: the floor may have risen since the gate.
	if len(f.slow) == f.k && durUS < f.slow[0].DurUS {
		f.mu.Unlock()
		return
	}
	f.slowRec.Add(1)
	i := sort.Search(len(f.slow), func(i int) bool { return f.slow[i].DurUS >= durUS })
	f.slow = append(f.slow, nil)
	copy(f.slow[i+1:], f.slow[i:])
	f.slow[i] = rec
	if len(f.slow) > f.k {
		f.slow = f.slow[1:]
	}
	if len(f.slow) == f.k {
		f.floorUS.Store(f.slow[0].DurUS)
	}
	f.mu.Unlock()
}

// FlightSnapshot is the recorder's state: slowest requests (slowest
// first), the retained degraded requests (most recent first), and how many
// of each kind were ever recorded (the ring forgets, the counters do not).
type FlightSnapshot struct {
	K                int             `json:"k"`
	RingSize         int             `json:"ring_size"`
	SlowRecorded     int64           `json:"slow_recorded"`
	DegradedRecorded int64           `json:"degraded_recorded"`
	Slowest          []*FlightRecord `json:"slowest"`
	Degraded         []*FlightRecord `json:"degraded"`
}

// Snapshot copies the recorder's current state (zero value when nil).
// Returned records are shared and must not be mutated.
func (f *FlightRecorder) Snapshot() FlightSnapshot {
	if f == nil {
		return FlightSnapshot{}
	}
	s := FlightSnapshot{
		K:                f.k,
		RingSize:         len(f.ring),
		SlowRecorded:     f.slowRec.Load(),
		DegradedRecorded: f.degRec.Load(),
	}
	f.mu.Lock()
	s.Slowest = make([]*FlightRecord, 0, len(f.slow))
	for i := len(f.slow) - 1; i >= 0; i-- {
		s.Slowest = append(s.Slowest, f.slow[i])
	}
	f.mu.Unlock()
	cur := f.cursor.Load()
	n := uint64(len(f.ring))
	if cur < n {
		n = cur
	}
	for i := uint64(0); i < n; i++ {
		if rec := f.ring[(cur-1-i)&f.mask].Load(); rec != nil {
			s.Degraded = append(s.Degraded, rec)
		}
	}
	return s
}
