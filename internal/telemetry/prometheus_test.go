package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// deterministicRegistry builds a registry whose exposition is byte-stable:
// counters, maxes, histogram buckets, and window counts are all functions
// of the fixed observations (window quantiles are too, as long as the test
// finishes within the one-minute window).
func deterministicRegistry() *Registry {
	r := NewRegistry()
	r.Counter("engine.queries").Add(42)
	r.Counter("serve.requests").Add(7)
	r.Max("pool.width").Observe(8)
	h := r.Histogram("serve.request_ns")
	for _, v := range []int64{0, 1, 5, 100, 1000, 1 << 20} {
		h.Observe(v)
	}
	w := r.Window("serve.request_ns")
	for v := int64(1); v <= 100; v++ {
		w.Observe(v * 1000)
	}
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := deterministicRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePrometheus(buf.Bytes()); err != nil {
		t.Fatalf("golden exposition invalid: %v\n%s", err, buf.Bytes())
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden (run with -update if intended):\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}

	// Scrape stability: a second render of the same registry is
	// byte-identical (the sorted output the golden test depends on).
	var again bytes.Buffer
	r := deterministicRegistry()
	r.WritePrometheus(&again) //nolint:errcheck
	var again2 bytes.Buffer
	r.WritePrometheus(&again2) //nolint:errcheck
	if !bytes.Equal(again.Bytes(), again2.Bytes()) {
		t.Error("successive scrapes of an unchanged registry differ")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil registry wrote %q (err %v)", buf.Bytes(), err)
	}
}

func TestPromNameSanitizes(t *testing.T) {
	for in, want := range map[string]string{
		"engine.queries":     "engine_queries",
		"a-b c/d":            "a_b_c_d",
		"9lives":             "_9lives",
		"ok_name:sub":        "ok_name:sub",
		"automata.compiles2": "automata_compiles2",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := PromEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("PromEscapeLabel = %q", got)
	}
}

func TestValidatePrometheusCatchesBreakage(t *testing.T) {
	for name, body := range map[string]string{
		"sample without TYPE":  "apt_x_total 1\n",
		"bad TYPE":             "# TYPE apt_x wobble\napt_x 1\n",
		"bad metric name":      "# TYPE 1x counter\n",
		"bad value":            "# TYPE apt_x counter\napt_x one\n",
		"unterminated label":   "# TYPE apt_x counter\napt_x{l=\"v 1\n",
		"le not increasing":    "# TYPE apt_h histogram\napt_h_bucket{le=\"5\"} 1\napt_h_bucket{le=\"3\"} 2\napt_h_bucket{le=\"+Inf\"} 2\napt_h_sum 3\napt_h_count 2\n",
		"bucket count shrinks": "# TYPE apt_h histogram\napt_h_bucket{le=\"1\"} 5\napt_h_bucket{le=\"2\"} 3\napt_h_bucket{le=\"+Inf\"} 5\napt_h_sum 3\napt_h_count 5\n",
		"no +Inf bucket":       "# TYPE apt_h histogram\napt_h_bucket{le=\"1\"} 1\napt_h_sum 1\napt_h_count 1\n",
		"missing _sum":         "# TYPE apt_h histogram\napt_h_bucket{le=\"+Inf\"} 1\napt_h_count 1\n",
		"count != +Inf":        "# TYPE apt_h histogram\napt_h_bucket{le=\"+Inf\"} 2\napt_h_sum 1\napt_h_count 3\n",
		"TYPE after samples":   "# TYPE apt_x counter\napt_x 1\n# TYPE apt_x gauge\n",
	} {
		if err := ValidatePrometheus([]byte(body)); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, body)
		}
	}
	good := "# HELP apt_x Help text.\n# TYPE apt_x counter\napt_x{label=\"va\\\"lue\"} 12 1700000000\n"
	if err := ValidatePrometheus([]byte(good)); err != nil {
		t.Errorf("validator rejected valid exposition: %v", err)
	}
}

func TestSnapshotWriteTextIncludesWindows(t *testing.T) {
	r := deterministicRegistry()
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	if !strings.Contains(buf.String(), "windows:") {
		t.Errorf("WriteText lacks the windows section:\n%s", buf.String())
	}
}
