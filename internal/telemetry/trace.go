package telemetry

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Attr is one typed key/value attribute of a trace event.  The concrete
// constructors (String, Int, ...) avoid interface boxing so that building
// attributes never allocates.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

type attrKind uint8

const (
	attrString attrKind = iota
	attrInt
	attrFloat
	attrBool
)

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, kind: attrString, s: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, kind: attrInt, i: int64(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, kind: attrInt, i: v} }

// Float64 builds a float attribute (NaN/Inf serialize as null).
func Float64(k string, v float64) Attr { return Attr{Key: k, kind: attrFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, kind: attrBool}
	if v {
		a.i = 1
	}
	return a
}

// DurUS builds an integer attribute holding d in microseconds.
func DurUS(k string, d time.Duration) Attr { return Int64(k, d.Microseconds()) }

// TraceWriter emits structured events as JSON Lines: one object per line
// with monotonic "ts_us" (microseconds since the writer was created), a
// strictly increasing "seq", the event name "ev", and the event's
// attributes as top-level keys.  Spans add "dur_us".  Safe for concurrent
// use; a nil *TraceWriter is a valid, disabled writer.
type TraceWriter struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	start time.Time
	seq   int64
	err   error
}

// NewTraceWriter returns a writer emitting JSONL to w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, start: time.Now(), buf: make([]byte, 0, 256)}
}

// Enabled reports whether events will actually be written.
func (t *TraceWriter) Enabled() bool { return t != nil }

// Err returns the first write error encountered, if any.
func (t *TraceWriter) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emit writes one event line.
func (t *TraceWriter) Emit(event string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	b := t.buf[:0]
	b = append(b, `{"ts_us":`...)
	b = strconv.AppendInt(b, time.Since(t.start).Microseconds(), 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	b = append(b, `,"ev":`...)
	b = strconv.AppendQuote(b, event)
	for _, a := range attrs {
		b = append(b, ',')
		b = strconv.AppendQuote(b, a.Key)
		b = append(b, ':')
		switch a.kind {
		case attrString:
			b = strconv.AppendQuote(b, a.s)
		case attrInt:
			b = strconv.AppendInt(b, a.i, 10)
		case attrFloat:
			if math.IsNaN(a.f) || math.IsInf(a.f, 0) {
				b = append(b, "null"...)
			} else {
				b = strconv.AppendFloat(b, a.f, 'g', -1, 64)
			}
		case attrBool:
			if a.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '}', '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
	t.buf = b[:0]
}

// Begin opens a span: a timed region reported as a single event carrying
// "dur_us" when End is called.  The zero Span (and any span from a nil
// writer) is a valid no-op.
func (t *TraceWriter) Begin(event string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, event: event, start: time.Now()}
}

// Span is an in-flight timed region.  Spans are values; copying is fine.
type Span struct {
	t     *TraceWriter
	event string
	start time.Time
}

// End emits the span's event with its duration and the given attributes.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	all := make([]Attr, 0, len(attrs)+1)
	all = append(all, DurUS("dur_us", time.Since(s.start)))
	all = append(all, attrs...)
	s.t.Emit(s.event, all...)
}
