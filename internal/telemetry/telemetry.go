// Package telemetry is the repository's zero-dependency observability core:
// atomic counters, maxima, and log₂-bucketed histograms collected in a
// Registry, plus a span-style structured event trace emitted as JSONL
// (trace.go).  Every layer of the system — the theorem prover, the automata
// cache, the analysis pipeline, and the parallel sparse kernels — reports
// through it, and the CLIs surface the result via -stats and -trace-json.
//
// The package is built around a "nil is off" discipline: a nil *Set, nil
// *Registry, nil *Counter, nil *Histogram, nil *Max, and nil *TraceWriter
// are all valid, disabled instruments whose methods no-op.  Hot paths hold
// pre-resolved instrument pointers and call them unconditionally; when
// telemetry is disabled those calls are a nil check and a return, with zero
// allocations (asserted by TestTelemetryDisabledAllocs and
// BenchmarkTelemetryDisabled).
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.  A nil *Counter is a
// valid no-op instrument.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Max tracks the maximum observed value of a non-negative quantity (e.g.
// peak recursion depth).  A nil *Max is a valid no-op instrument.
type Max struct{ v atomic.Int64 }

// Observe records v, keeping the running maximum.
func (m *Max) Observe(v int64) {
	if m == nil {
		return
	}
	for {
		cur := m.v.Load()
		if v <= cur || m.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the maximum observed so far (0 when nothing was observed).
func (m *Max) Value() int64 {
	if m == nil {
		return 0
	}
	return m.v.Load()
}

// histBuckets is the number of log₂ buckets: bucket i counts observations v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram aggregates non-negative observations (typically nanosecond
// durations) into count/sum/min/max plus log₂ buckets for rough quantiles.
// Safe for concurrent use; a nil *Histogram is a valid no-op instrument.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minPlus1 stores min+1 so that 0 can mean "unset".
	minPlus1 atomic.Int64
	max      atomic.Int64
	buckets  [histBuckets]atomic.Int64
}

// Observe records one value.  Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minPlus1.Load()
		if cur != 0 && v+1 >= cur {
			break
		}
		if h.minPlus1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// HistSummary is a point-in-time digest of a Histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// P50 and P99 are upper bounds of the log₂ bucket holding the quantile —
	// order-of-magnitude estimates, not exact order statistics.
	P50 int64 `json:"p50"`
	P99 int64 `json:"p99"`
}

// Summary digests the histogram (zero value for a nil histogram).
func (h *Histogram) Summary() HistSummary {
	if h == nil {
		return HistSummary{}
	}
	s := HistSummary{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	if s.Count == 0 {
		return s
	}
	if mp := h.minPlus1.Load(); mp > 0 {
		s.Min = mp - 1
	}
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.P50 = h.quantile(s.Count, 0.50)
	s.P99 = h.quantile(s.Count, 0.99)
	return s
}

// quantile returns the upper bound of the bucket containing the q-quantile.
func (h *Histogram) quantile(count int64, q float64) int64 {
	rank := int64(q * float64(count))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return h.max.Load()
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// Registry is a named collection of instruments.  Instruments are created on
// first use and live for the registry's lifetime, so hot paths resolve them
// once and then update lock-free.  A nil *Registry hands out nil (disabled)
// instruments.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	maxes    map[string]*Max
	hists    map[string]*Histogram
	windows  map[string]*WindowHistogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		maxes:    make(map[string]*Max),
		hists:    make(map[string]*Histogram),
		windows:  make(map[string]*WindowHistogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Max returns the named maximum tracker, creating it if needed.
func (r *Registry) Max(name string) *Max {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.maxes[name]
	if !ok {
		m = &Max{}
		r.maxes[name] = m
	}
	return m
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Window returns the named sliding-window histogram, creating it if
// needed.  Window names share the registry namespace but are a separate
// instrument kind: a *_ns name may hold both a cumulative Histogram and a
// WindowHistogram (serve.request_ns does).
func (r *Registry) Window(name string) *WindowHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = NewWindowHistogram()
		r.windows[name] = w
	}
	return w
}

// Snapshot is a point-in-time copy of every instrument's state.
type Snapshot struct {
	Counters map[string]int64         `json:"counters"`
	Maxes    map[string]int64         `json:"maxes"`
	Hists    map[string]HistSummary   `json:"histograms"`
	Windows  map[string]WindowSummary `json:"windows,omitempty"`
}

// Snapshot captures the current state of all instruments.  Sliding-window
// summaries cover the trailing DefaultWindow.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: map[string]int64{},
		Maxes:    map[string]int64{},
		Hists:    map[string]HistSummary{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, m := range r.maxes {
		s.Maxes[n] = m.Value()
	}
	for n, h := range r.hists {
		s.Hists[n] = h.Summary()
	}
	if len(r.windows) > 0 {
		s.Windows = map[string]WindowSummary{}
		for n, w := range r.windows {
			s.Windows[n] = w.Summary(DefaultWindow)
		}
	}
	return s
}

// Ratio returns Counters[num]/Counters[den], reporting ok=false when the
// denominator is absent or zero.
func (s Snapshot) Ratio(num, den string) (float64, bool) {
	d := s.Counters[den]
	if d == 0 {
		return 0, false
	}
	return float64(s.Counters[num]) / float64(d), true
}

// WriteText renders the snapshot as an aligned human-readable summary,
// formatting *_ns histograms as durations.
func (s Snapshot) WriteText(w io.Writer) {
	names := func(m map[string]int64) []string {
		out := make([]string, 0, len(m))
		for n := range m {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	if len(s.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, n := range names(s.Counters) {
			fmt.Fprintf(w, "  %-44s %12d\n", n, s.Counters[n])
		}
	}
	if len(s.Maxes) > 0 {
		fmt.Fprintln(w, "maxima:")
		for _, n := range names(s.Maxes) {
			fmt.Fprintf(w, "  %-44s %12d\n", n, s.Maxes[n])
		}
	}
	if len(s.Hists) > 0 {
		hn := make([]string, 0, len(s.Hists))
		for n := range s.Hists {
			hn = append(hn, n)
		}
		sort.Strings(hn)
		fmt.Fprintf(w, "histograms: %32s %12s %12s %12s %12s\n", "count", "mean", "min", "max", "~p99")
		for _, n := range hn {
			h := s.Hists[n]
			if strings.HasSuffix(n, "_ns") {
				fmt.Fprintf(w, "  %-42s %10d %12v %12v %12v %12v\n", n, h.Count,
					time.Duration(h.Mean).Round(time.Microsecond),
					time.Duration(h.Min).Round(time.Microsecond),
					time.Duration(h.Max).Round(time.Microsecond),
					time.Duration(h.P99).Round(time.Microsecond))
			} else {
				fmt.Fprintf(w, "  %-42s %10d %12.1f %12d %12d %12d\n", n, h.Count, h.Mean, h.Min, h.Max, h.P99)
			}
		}
	}
	if len(s.Windows) > 0 {
		wn := make([]string, 0, len(s.Windows))
		for n := range s.Windows {
			wn = append(wn, n)
		}
		sort.Strings(wn)
		fmt.Fprintf(w, "windows: %35s %12s %12s %12s %12s\n", "count", "p50", "p95", "p99", "max")
		for _, n := range wn {
			ws := s.Windows[n]
			if strings.HasSuffix(n, "_ns") {
				fmt.Fprintf(w, "  %-42s %10d %12v %12v %12v %12v\n", n, ws.Count,
					time.Duration(ws.P50).Round(time.Microsecond),
					time.Duration(ws.P95).Round(time.Microsecond),
					time.Duration(ws.P99).Round(time.Microsecond),
					time.Duration(ws.Max).Round(time.Microsecond))
			} else {
				fmt.Fprintf(w, "  %-42s %10d %12d %12d %12d %12d\n", n, ws.Count, ws.P50, ws.P95, ws.P99, ws.Max)
			}
		}
	}
}
