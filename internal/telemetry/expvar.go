package telemetry

import "expvar"

// PublishExpvar exposes the registry as a live expvar variable, so a
// net/http/pprof + /debug/vars endpoint (sparsebench -http) serves a JSON
// snapshot of every instrument.  Publishing the same name twice is a no-op
// (expvar itself panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
