package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterMaxHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("c") != c {
		t.Error("Counter not idempotent")
	}

	m := r.Max("m")
	m.Observe(5)
	m.Observe(2)
	m.Observe(9)
	if m.Value() != 9 {
		t.Errorf("max = %d, want 9", m.Value())
	}

	h := r.Histogram("h")
	for _, v := range []int64{1, 2, 3, 100, -7} {
		h.Observe(v)
	}
	s := h.Summary()
	if s.Count != 5 || s.Sum != 106 || s.Min != 0 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 106.0/5 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.P50 > s.P99 || s.P99 > 127 {
		t.Errorf("quantiles p50=%d p99=%d", s.P50, s.P99)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Observe(i)
			}
		}()
	}
	wg.Wait()
	s := h.Summary()
	if s.Count != 8000 || s.Min != 0 || s.Max != 999 {
		t.Errorf("concurrent summary = %+v", s)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var set *Set
	var reg *Registry
	var tw *TraceWriter
	set.Counter("x").Add(1)
	set.Max("x").Observe(1)
	set.Histogram("x").Observe(1)
	set.Emit("ev", Int("a", 1))
	set.Begin("ev").End()
	if set.Enabled() || set.TraceEnabled() {
		t.Error("nil set reports enabled")
	}
	if reg.Counter("x") != nil || reg.Max("x") != nil || reg.Histogram("x") != nil {
		t.Error("nil registry returned live instruments")
	}
	reg.PublishExpvar("never")
	tw.Emit("ev")
	tw.Begin("ev").End()
	if tw.Enabled() || tw.Err() != nil {
		t.Error("nil trace writer misbehaves")
	}
	snap := reg.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Emit("plain")
	tw.Emit("attrs",
		String("s", `quote " and \ slash`),
		Int("i", -3),
		Int64("i64", 1<<40),
		Float64("f", 1.5),
		Float64("nan", nanFloat()),
		Bool("yes", true),
		Bool("no", false),
	)
	sp := tw.Begin("span")
	time.Sleep(time.Millisecond)
	sp.End(String("k", "v"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	var lastSeq float64
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		for _, k := range []string{"ts_us", "seq", "ev"} {
			if _, ok := m[k]; !ok {
				t.Errorf("line %d missing %q", i, k)
			}
		}
		if seq := m["seq"].(float64); seq <= lastSeq {
			t.Errorf("seq not increasing: %v after %v", seq, lastSeq)
		} else {
			lastSeq = seq
		}
	}
	var attrs map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &attrs); err != nil {
		t.Fatal(err)
	}
	if attrs["s"] != `quote " and \ slash` || attrs["i"] != float64(-3) ||
		attrs["f"] != 1.5 || attrs["nan"] != nil || attrs["yes"] != true || attrs["no"] != false {
		t.Errorf("attr round-trip failed: %v", attrs)
	}
	var span map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &span); err != nil {
		t.Fatal(err)
	}
	if span["ev"] != "span" || span["k"] != "v" {
		t.Errorf("span event wrong: %v", span)
	}
	if dur, ok := span["dur_us"].(float64); !ok || dur < 500 {
		t.Errorf("span dur_us = %v, want ≥ 500µs", span["dur_us"])
	}
}

func nanFloat() float64 {
	z := 0.0
	return z / z
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestTraceWriterErr(t *testing.T) {
	tw := NewTraceWriter(failWriter{})
	tw.Emit("ev")
	if tw.Err() == nil {
		t.Error("write error not recorded")
	}
}

func TestSnapshotWriteTextAndRatio(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Counter("lookups").Add(4)
	r.Max("depth").Observe(7)
	r.Histogram("q_ns").Observe(1500)
	snap := r.Snapshot()
	if rate, ok := snap.Ratio("hits", "lookups"); !ok || rate != 0.75 {
		t.Errorf("Ratio = %v %v", rate, ok)
	}
	if _, ok := snap.Ratio("hits", "absent"); ok {
		t.Error("Ratio with absent denominator reported ok")
	}
	var buf bytes.Buffer
	snap.WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"hits", "lookups", "depth", "q_ns", "counters:", "maxima:", "histograms:"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, out)
		}
	}
}

func TestPhases(t *testing.T) {
	var buf bytes.Buffer
	reg := NewRegistry()
	tel := New(reg, NewTraceWriter(&buf))
	ph := NewPhases(tel)
	if err := ph.Run("parse", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := ph.Run("analyze", func() error { return wantErr }); err != wantErr {
		t.Fatalf("error not propagated: %v", err)
	}
	if len(ph.Timings()) != 2 || ph.Timings()[0].Name != "parse" {
		t.Errorf("timings = %v", ph.Timings())
	}
	if !strings.Contains(ph.Summary(), "parse") || !strings.Contains(ph.Summary(), "total") {
		t.Errorf("summary = %q", ph.Summary())
	}
	if !strings.Contains(buf.String(), `"phase":"analyze"`) {
		t.Errorf("trace missing phase event: %s", buf.String())
	}
	if reg.Snapshot().Hists["pipeline.parse_ns"].Count != 1 {
		t.Error("phase histogram not recorded")
	}

	// A nil-telemetry Phases still records timings.
	ph2 := NewPhases(nil)
	_ = ph2.Run("x", func() error { return nil })
	if len(ph2.Timings()) != 1 {
		t.Error("nil-telemetry phases lost timing")
	}
}

// disabledHotPath is the exact call pattern instrumented hot paths use when
// telemetry is off: pre-resolved nil instruments plus a TraceEnabled guard.
func disabledHotPath(tel *Set, c *Counter, m *Max, h *Histogram) {
	c.Add(1)
	m.Observe(42)
	h.Observe(1234)
	tel.Emit("event")
	if tel.TraceEnabled() {
		tel.Emit("expensive", String("goal", "never built"))
	}
}

func TestTelemetryDisabledAllocs(t *testing.T) {
	var tel *Set
	c, m, h := tel.Counter("c"), tel.Max("m"), tel.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		disabledHotPath(tel, c, m, h)
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry path allocates %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkTelemetryDisabled measures the no-op path; the acceptance
// criterion is 0 allocs/op (run with -benchmem or check the test above).
func BenchmarkTelemetryDisabled(b *testing.B) {
	var tel *Set
	c, m, h := tel.Counter("c"), tel.Max("m"), tel.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disabledHotPath(tel, c, m, h)
	}
}

// BenchmarkTelemetryEnabledCounters is the comparison point: live atomic
// instruments without tracing.
func BenchmarkTelemetryEnabledCounters(b *testing.B) {
	reg := NewRegistry()
	tel := New(reg, nil)
	c, m, h := tel.Counter("c"), tel.Max("m"), tel.Histogram("h")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		disabledHotPath(tel, c, m, h)
	}
}
