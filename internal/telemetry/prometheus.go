package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-exposition (version 0.0.4) rendering of a Registry, so
// any standard scraper can consume aptserved's /metrics without a sidecar.
// The mapping:
//
//   - Counter   → counter   apt_<name>_total
//   - Max       → gauge     apt_<name>
//   - Histogram → histogram apt_<name> with cumulative log₂ buckets
//     (le = 2^i − 1, the exact upper bound of bucket i), _sum and _count
//   - WindowHistogram → summary apt_<name>_window with exact sample
//     quantiles (0.5 / 0.95 / 0.99) over the trailing DefaultWindow,
//     like a client_golang sliding-window summary
//
// Dots and any other characters outside [a-zA-Z0-9_:] become '_'.  Output
// is sorted by metric name, so successive scrapes of an unchanged registry
// are byte-identical (the exposition golden test relies on this).

// PromName sanitizes a registry instrument name into a Prometheus metric
// name component (no prefix added).
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromEscapeLabel escapes a label value per the exposition format
// (backslash, double quote, and newline).
func PromEscapeLabel(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheus renders every instrument in Prometheus text-exposition
// format, metric names prefixed "apt_".  A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// Copy the instrument pointers under the lock, render outside it (the
	// instruments themselves are atomic).
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	maxes := make(map[string]*Max, len(r.maxes))
	for n, m := range r.maxes {
		maxes[n] = m
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	windows := make(map[string]*WindowHistogram, len(r.windows))
	for n, wh := range r.windows {
		windows[n] = wh
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, n := range sortedKeys(counters) {
		name := "apt_" + PromName(n) + "_total"
		fmt.Fprintf(bw, "# HELP %s Cumulative counter %s.\n# TYPE %s counter\n", name, n, name)
		fmt.Fprintf(bw, "%s %d\n", name, counters[n].Value())
	}
	for _, n := range sortedKeys(maxes) {
		name := "apt_" + PromName(n)
		fmt.Fprintf(bw, "# HELP %s Running maximum %s.\n# TYPE %s gauge\n", name, n, name)
		fmt.Fprintf(bw, "%s %d\n", name, maxes[n].Value())
	}
	for _, n := range sortedKeys(hists) {
		writePromHistogram(bw, "apt_"+PromName(n), n, hists[n])
	}
	for _, n := range sortedKeys(windows) {
		writePromWindow(bw, "apt_"+PromName(n)+"_window", n, windows[n])
	}
	return bw.Flush()
}

func writePromHistogram(w io.Writer, name, orig string, h *Histogram) {
	fmt.Fprintf(w, "# HELP %s Cumulative log2-bucket histogram %s.\n# TYPE %s histogram\n", name, orig, name)
	var (
		cum   int64
		sum   = h.sum.Load()
		count = h.count.Load()
	)
	// Bucket i of the log₂ histogram counts v with bits.Len64(v) == i,
	// i.e. v ≤ 2^i − 1; emit only occupied buckets (plus le="0") — the
	// cumulative counts stay monotone either way.
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if i == 0 || (n > 0 && i < 64) {
			le := uint64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, strconv.FormatUint(le, 10), cum)
		}
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
	fmt.Fprintf(w, "%s_sum %d\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}

func writePromWindow(w io.Writer, name, orig string, wh *WindowHistogram) {
	s := wh.Summary(DefaultWindow)
	fmt.Fprintf(w, "# HELP %s Sliding-window (%dms) sample quantiles of %s.\n# TYPE %s summary\n",
		name, s.WindowMS, orig, name)
	fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, s.P50)
	fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", name, s.P95)
	fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, s.P99)
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ValidatePrometheus checks that data parses as Prometheus text-exposition
// format: well-formed HELP/TYPE comments, metric and label syntax, float
// values, TYPE declared before its samples, and — for histograms —
// monotone le bounds, non-decreasing cumulative bucket counts, a +Inf
// bucket, and _sum/_count lines.  It exists so tests (and `make
// obs-check`) can gate /metrics output without a Prometheus dependency.
func ValidatePrometheus(data []byte) error {
	type family struct {
		typ string
		// histogram bookkeeping
		lastLE    float64
		lastCount float64
		infCount  float64
		sawInf    bool
		sawSum    bool
		sawCount  bool
		samples   int
	}
	families := map[string]*family{}
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok {
				if _, exists := families[b]; exists {
					return b
				}
			}
		}
		return name
	}
	lineNo := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		lineNo++
		s := string(line)
		if s == "" {
			continue
		}
		if strings.HasPrefix(s, "#") {
			fields := strings.SplitN(s, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, s)
			}
			if !validPromName(fields[2]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[2])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE without a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				if f := families[fields[2]]; f != nil && f.samples > 0 {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, fields[2])
				}
				families[fields[2]] = &family{typ: fields[3], lastLE: math.Inf(-1)}
			}
			continue
		}
		name, labels, value, err := parsePromSample(s)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := families[base(name)]
		if fam == nil {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		fam.samples++
		if fam.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				bound, err = strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
			}
			if bound <= fam.lastLE {
				return fmt.Errorf("line %d: le %q not increasing", lineNo, le)
			}
			if value < fam.lastCount {
				return fmt.Errorf("line %d: cumulative bucket count decreased", lineNo)
			}
			fam.lastLE, fam.lastCount = bound, value
			if le == "+Inf" {
				fam.sawInf, fam.infCount = true, value
			}
		}
		if strings.HasSuffix(name, "_sum") {
			fam.sawSum = true
		}
		if strings.HasSuffix(name, "_count") {
			fam.sawCount = true
			if fam.typ == "histogram" && fam.sawInf && value != fam.infCount {
				return fmt.Errorf("line %d: histogram _count %v != +Inf bucket %v", lineNo, value, fam.infCount)
			}
		}
	}
	for name, fam := range families {
		if fam.typ == "histogram" && fam.samples > 0 {
			if !fam.sawInf {
				return fmt.Errorf("histogram %s has no +Inf bucket", name)
			}
			if !fam.sawSum || !fam.sawCount {
				return fmt.Errorf("histogram %s missing _sum or _count", name)
			}
		}
	}
	return nil
}

func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parsePromSample parses `name{l1="v1",...} value [timestamp]`.
func parsePromSample(s string) (name string, labels map[string]string, value float64, err error) {
	rest := s
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", s)
	}
	name = rest[:i]
	if !validPromName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	labels = map[string]string{}
	if rest[i] == '{' {
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if len(rest) > 0 && rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed labels in %q", s)
			}
			lname := rest[:eq]
			if !validPromName(lname) {
				return "", nil, 0, fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for j := 0; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' && j+1 < len(rest) {
					j++
					switch rest[j] {
					case 'n':
						val.WriteByte('\n')
					default:
						val.WriteByte(rest[j])
					}
					continue
				}
				if c == '"' {
					labels[lname] = val.String()
					rest = rest[j+1:]
					closed = true
					break
				}
				val.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated label value in %q", s)
			}
		}
	} else {
		rest = rest[i:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("malformed value in %q", s)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	return name, labels, value, nil
}
