// Package exec is the execution tier of the query plane: the bounded pool
// of warm per-axiom-set engines, the raw-query builder that turns wire
// queries into core ones, and the warm-state snapshot/preload operations
// the cluster's ring-change handoff rides on.  It knows nothing about HTTP
// or admission — internal/serve composes it under both.
package exec

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/engine"
	"repro/internal/prover"
	"repro/internal/telemetry"
)

// PoolConfig sizes a Pool and the engines it builds.
type PoolConfig struct {
	// Workers is each engine's pool width (minimum 1).
	Workers int
	// QueryTimeout is the engines' default per-query proof-search bound.
	QueryTimeout time.Duration
	// MaxEngines bounds the resident engine population (LRU beyond; ≤0
	// means unbounded).
	MaxEngines int
	// DFAShardCap and MemoShardCap bound the shared caches' shards.
	DFAShardCap  int
	MemoShardCap int
	// VerifyProofs re-checks every prover-backed No independently.
	VerifyProofs bool
	// Preload, when non-nil, preseeds every engine the pool builds with a
	// compiled automata artifact.
	Preload *automata.Artifact
}

// Pool keeps one warm engine.Engine — and therefore one shared DFA cache
// and one proof memo — per axiom-set fingerprint, reclaiming the least-
// recently-used engine when the population exceeds its cap.  Eviction only
// unlinks the engine from the pool: an in-flight batch still running on it
// finishes normally and the garbage collector reclaims the caches
// afterwards, so no request ever observes a half-dead engine.
type Pool struct {
	cfg PoolConfig
	tel *telemetry.Set

	mu      sync.Mutex
	seq     int64
	entries map[uint64]*poolEntry

	evicted atomic.Int64
	cCold   *telemetry.Counter
	cWarm   *telemetry.Counter
}

// poolEntry is one resident engine plus its bookkeeping.
type poolEntry struct {
	id      uint64 // axiom.Set.ID() identity (the pool's map key)
	fp      uint64 // axiom.Set.Fingerprint64(), the cross-process identity
	key     string // axiom.Set.Key() fingerprint, kept for /statz ordering
	name    string // human-readable axiom-set name
	set     *axiom.Set
	eng     *engine.Engine
	lastUse int64 // pool sequence number of the most recent get
	uses    int64
}

// NewPool builds an empty pool.
func NewPool(cfg PoolConfig, tel *telemetry.Set) *Pool {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Pool{
		cfg:     cfg,
		tel:     tel,
		entries: make(map[uint64]*poolEntry),
		cCold:   tel.Counter("serve.engine_cold"),
		cWarm:   tel.Counter("serve.engine_warm"),
	}
}

// Get returns the warm engine for the axiom set, building one on a cold
// miss.  cold reports whether this call built it.
func (p *Pool) Get(ax *axiom.Set) (eng *engine.Engine, cold bool) {
	return p.get(ax, p.cfg.Preload)
}

// GetPreloaded is Get with an explicit artifact for the cold-build preseed
// (the warm-handoff path: a router ships the old owner's snapshot to the
// backend gaining the shard).  A warm hit ignores the artifact — the
// resident engine is at least as warm as any snapshot of it.
func (p *Pool) GetPreloaded(ax *axiom.Set, art *automata.Artifact) (eng *engine.Engine, cold bool) {
	if art == nil {
		art = p.cfg.Preload
	}
	return p.get(ax, art)
}

func (p *Pool) get(ax *axiom.Set, preload *automata.Artifact) (*engine.Engine, bool) {
	id := ax.ID()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seq++
	if e, ok := p.entries[id]; ok {
		e.lastUse = p.seq
		e.uses++
		p.cWarm.Add(1)
		return e.eng, false
	}
	e := &poolEntry{
		id:   id,
		fp:   ax.Fingerprint64(),
		key:  ax.Key(),
		name: ax.StructName,
		set:  ax,
		eng: engine.New(ax, engine.Options{
			Workers:      p.cfg.Workers,
			QueryTimeout: p.cfg.QueryTimeout,
			Prover:       prover.Options{Telemetry: p.tel},
			VerifyProofs: p.cfg.VerifyProofs,
			Telemetry:    p.tel,
			DFAShardCap:  p.cfg.DFAShardCap,
			MemoShardCap: p.cfg.MemoShardCap,
			Preload:      preload,
		}),
		lastUse: p.seq,
		uses:    1,
	}
	p.entries[id] = e
	p.cCold.Add(1)
	for p.cfg.MaxEngines > 0 && len(p.entries) > p.cfg.MaxEngines {
		var lru *poolEntry
		for _, cand := range p.entries {
			if cand != e && (lru == nil || cand.lastUse < lru.lastUse) {
				lru = cand
			}
		}
		if lru == nil {
			break
		}
		delete(p.entries, lru.id)
		p.evicted.Add(1)
	}
	return e.eng, true
}

// Find returns the resident engine whose axiom set has the given cross-
// process fingerprint, without touching its LRU position (a snapshot
// request must not keep an otherwise idle engine alive).
func (p *Pool) Find(fp uint64) (*engine.Engine, *axiom.Set, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.entries {
		if e.fp == fp {
			return e.eng, e.set, true
		}
	}
	return nil, nil, false
}

// SnapshotArtifact renders the fingerprinted engine's warm state — compiled
// DFAs, decision tables, memoized proof goals, and the axiom set itself —
// as a portable artifact, or nil when no such engine is resident.
func (p *Pool) SnapshotArtifact(fp uint64) *automata.Artifact {
	eng, set, ok := p.Find(fp)
	if !ok {
		return nil
	}
	art := eng.SnapshotArtifact()
	engine.AppendAxiomSet(art, set)
	return art
}

// PreloadArtifact builds (or warms) an engine for every axiom set the
// artifact carries, preseeding cold builds from the artifact.  It returns
// the number of engines built cold.
func (p *Pool) PreloadArtifact(art *automata.Artifact) int {
	built := 0
	for _, set := range engine.ArtifactAxiomSets(art) {
		if _, cold := p.GetPreloaded(set, art); cold {
			built++
		}
	}
	return built
}

// View is a read-only copy of one resident engine's bookkeeping, taken
// under the pool lock (the mutable lastUse/uses fields must not be read
// while another Get mutates them).
type View struct {
	Key  string
	Name string
	FP   uint64
	Eng  *engine.Engine
	Uses int64
}

// Snapshot returns the resident entries sorted by name then key, for the
// /statz report.
func (p *Pool) Snapshot() []View {
	p.mu.Lock()
	out := make([]View, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, View{Key: e.key, Name: e.name, FP: e.fp, Eng: e.eng, Uses: e.uses})
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Len reports the resident engine count.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Evicted reports how many engines the LRU has reclaimed.
func (p *Pool) Evicted() int64 { return p.evicted.Load() }

// Fingerprints returns the resident axiom-set fingerprints (unordered).
func (p *Pool) Fingerprints() []uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint64, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, e.fp)
	}
	return out
}
