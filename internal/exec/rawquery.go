package exec

import (
	"fmt"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
	"repro/internal/wire"
)

// BuildRawQueries turns wire raw queries into core ones against the given
// axiom set.  Paths parse over the set's field alphabet so single-letter
// field names concatenate the same way they do in axiom text; an empty path
// means ε (the access is through the handle itself).
func BuildRawQueries(ax *axiom.Set, raws []wire.RawQuery) ([]core.Query, error) {
	fields := ax.Fields()
	parsePath := func(src string) (pathexpr.Expr, error) {
		if src == "" {
			src = "eps"
		}
		return pathexpr.ParseAlphabet(src, fields)
	}
	out := make([]core.Query, len(raws))
	for i, rq := range raws {
		sp, err := parsePath(rq.SPath)
		if err != nil {
			return nil, fmt.Errorf("raw[%d].s_path: %w", i, err)
		}
		tp, err := parsePath(rq.TPath)
		if err != nil {
			return nil, fmt.Errorf("raw[%d].t_path: %w", i, err)
		}
		rel, err := parseRelation(rq)
		if err != nil {
			return nil, fmt.Errorf("raw[%d]: %w", i, err)
		}
		out[i] = core.Query{
			Axioms: ax,
			S: core.Access{
				Handle:  rq.SHandle,
				Path:    sp,
				Field:   rq.SField,
				IsWrite: rq.SWrite,
			},
			T: core.Access{
				Handle:  rq.THandle,
				Path:    tp,
				Field:   rq.TField,
				IsWrite: rq.TWrite,
			},
			Relation: rel,
		}
	}
	return out, nil
}

// parseRelation maps the wire relation to core.HandleRelation, defaulting
// by handle-name equality when unset.
func parseRelation(rq wire.RawQuery) (core.HandleRelation, error) {
	switch rq.Relation {
	case "same":
		return core.SameHandle, nil
	case "distinct":
		return core.DistinctHandles, nil
	case "unknown":
		return core.UnknownHandles, nil
	case "":
		if rq.SHandle == rq.THandle {
			return core.SameHandle, nil
		}
		return core.UnknownHandles, nil
	}
	return 0, fmt.Errorf("relation %q: want \"same\", \"distinct\", \"unknown\", or empty", rq.Relation)
}

// RenderRawQuery renders one raw query the way QueryResult.Query echoes it.
func RenderRawQuery(rq wire.RawQuery) string {
	rel := rq.Relation
	if rel == "" {
		if rq.SHandle == rq.THandle {
			rel = "same"
		} else {
			rel = "unknown"
		}
	}
	return fmt.Sprintf("raw %s.%s->%s / %s.%s->%s (%s)",
		rq.SHandle, orEps(rq.SPath), rq.SField, rq.THandle, orEps(rq.TPath), rq.TField, rel)
}

func orEps(p string) string {
	if p == "" {
		return "eps"
	}
	return p
}
