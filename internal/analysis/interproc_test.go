package analysis

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prover"
)

const interprocSrc = `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};

struct Node* advance(struct Node *p) {
	struct Node *q;
	q = p->link;
	return q;
}

struct Node* advanceTwice(struct Node *p) {
	struct Node *q;
	q = p->link;
	q = q->link;
	return q;
}

void relink(struct Node *a, struct Node *b) {
	a->link = b;
}

void churn(struct Node *a) {
	relink(a, a);
	mystery(a);
}

void caller(struct Node *head) {
	struct Node *x;
	struct Node *y;
	x = advance(head);
	y = advanceTwice(head);
S:	x->f = 1;
T:	y->f = 2;
}

void crossesMutation(struct Node *head, struct Node *other) {
	struct Node *x;
	x = advance(head);
S:	x->f = 1;
	relink(head, other);
T:	x->f = 2;
}
`

func TestSummarize(t *testing.T) {
	prog := lang.MustParse(interprocSrc)
	sums := Summarize(prog)

	adv := sums["advance"]
	if adv == nil || !adv.RetKnown || adv.RetParam != 0 || adv.RetPath.String() != "link" {
		t.Fatalf("advance summary = %+v", adv)
	}
	if len(adv.ModifiedFields) != 0 || adv.CallsUnknown {
		t.Errorf("advance should be pure: %+v", adv)
	}

	adv2 := sums["advanceTwice"]
	if adv2 == nil || !adv2.RetKnown || adv2.RetPath.String() != "link.link" {
		t.Fatalf("advanceTwice summary = %+v", adv2)
	}

	rl := sums["relink"]
	if rl == nil || !reflect.DeepEqual(rl.ModifiedFields, []string{"link"}) {
		t.Fatalf("relink summary = %+v", rl)
	}
	if rl.RetKnown {
		t.Error("void function should not report a return path")
	}

	// churn inherits relink's modification and taints on mystery().
	ch := sums["churn"]
	if !reflect.DeepEqual(ch.ModifiedFields, []string{"link"}) || !ch.CallsUnknown {
		t.Fatalf("churn summary = %+v", ch)
	}
}

// TestAccessorReturnPathsFlowIntoAPM: x = advance(head) gives x the path
// head.link, so S vs T resolves precisely through two calls.
func TestAccessorReturnPathsFlowIntoAPM(t *testing.T) {
	prog := lang.MustParse(interprocSrc)
	res, err := Analyze(prog, "caller", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	q := qs[0]
	if q.S.Handle != "_hhead" {
		t.Fatalf("query = %+v, want _hhead anchor", q)
	}
	if q.S.Path.String() != "link" || q.T.Path.String() != "link.link" {
		t.Fatalf("paths = %s / %s, want link / link.link", q.S.Path, q.T.Path)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	if out := tester.DepTest(q); out.Result != core.No {
		t.Fatalf("accessor-derived query = %v, want No", out.Result)
	}
}

// TestCalleeMutationOpensWindow: relink's store to link (inside the callee)
// invalidates the link axioms for queries spanning the call.
func TestCalleeMutationOpensWindow(t *testing.T) {
	prog := lang.MustParse(interprocSrc)
	res, err := Analyze(prog, "crossesMutation", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mods) == 0 {
		t.Fatal("callee mutation not recorded as a modification site")
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Axioms.Len() != 0 {
			t.Errorf("window across relink() kept %d axioms, want 0", q.Axioms.Len())
		}
	}
	// The identical x->f accesses still collide definitely.
	tester := core.NewTester(res.Axioms, prover.Options{})
	if out := tester.DepTest(qs[0]); out.Result != core.Yes {
		t.Errorf("same pointer both sides = %v, want Yes", out.Result)
	}
}

// TestCalleeMutationInvalidatesPaths: x's path through link is dropped at
// the relink call.
func TestCalleeMutationInvalidatesPaths(t *testing.T) {
	prog := lang.MustParse(interprocSrc)
	res, err := Analyze(prog, "crossesMutation", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, acc := range res.AccessesAt("T") {
		for h := range acc.Paths {
			if h == "_hhead" {
				t.Errorf("head-relative path for x survived the callee's link store")
			}
		}
	}
}

// TestUnknownCalleeLenientVsStrict: unchanged behavior for undefined
// functions.
func TestUnknownCalleeLenientVsStrict(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms { forall p <> q, p.link <> q.link; forall p, p.link+ <> p.eps; }
};
void g(struct Node *a) {
	struct Node *p;
	p = a->link;
S:	p->f = 1;
	mystery(a);
T:	p->f = 2;
}
`
	prog := lang.MustParse(src)
	lenient, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := lenient.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Axioms.Len() == 0 {
		t.Error("lenient mode dropped axioms across an unknown call")
	}
	strict, err := Analyze(prog, "g", Options{CallsModifyStructure: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err = strict.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Axioms.Len() != 0 {
		t.Error("strict mode kept axioms across an unknown call")
	}
}

// TestRecursiveSummaries: mutual recursion reaches a fixpoint.
func TestRecursiveSummaries(t *testing.T) {
	src := `
struct T { struct T *a; struct T *b; };
void even(struct T *x) { x->a = x; odd(x); }
void odd(struct T *x) { x->b = x; even(x); }
`
	prog := lang.MustParse(src)
	sums := Summarize(prog)
	for _, name := range []string{"even", "odd"} {
		if !reflect.DeepEqual(sums[name].ModifiedFields, []string{"a", "b"}) {
			t.Errorf("%s modified fields = %v, want [a b]", name, sums[name].ModifiedFields)
		}
	}
}
