package analysis

import (
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/lang"
)

// These tests pin the interprocedural guard-propagation rules: what a call
// boundary does to the guard predicates in flight.  The invariant under
// test is directional — guards may only widen toward ⊤ (fewer predicates,
// or distinct versions that refuse to conflict); a call must never leave a
// stale predicate behind that could produce an unsound conflict.

const interprocGuardSrc = `
struct T {
	struct T *next;
	int flag;
	int v;
};

void poke(struct T *p) {
	p->flag = 0;
}

void pokev(struct T *p) {
	p->v = 0;
}

void chain(struct T *p) {
	poke(p);
}

void opaque_between(struct T *p, struct T *q) {
	if (p->flag) {
S:		p->v = 1;
	}
	mystery(q);
	if (!p->flag) {
T:		q->v = 2;
	}
}

void poke_between(struct T *p, struct T *q) {
	if (p->flag) {
S:		p->v = 1;
	}
	poke(q);
	if (!p->flag) {
T:		q->v = 2;
	}
}

void chain_between(struct T *p, struct T *q) {
	if (p->flag) {
S:		p->v = 1;
	}
	chain(q);
	if (!p->flag) {
T:		q->v = 2;
	}
}

void harmless_between(struct T *p, struct T *q) {
	if (p->flag) {
S:		p->v = 1;
	}
	pokev(q);
	if (!p->flag) {
T:		q->v = 2;
	}
}

void var_guard_survives(struct T *p, struct T *q, int mode) {
	if (mode) {
S:		p->v = 1;
	}
	mystery(q);
	if (!mode) {
T:		q->v = 2;
	}
}

void call_in_loop(struct T *h, struct T *q) {
	struct T *p;
	p = h;
	while (p != NULL) {
		if (p->flag) {
A:			p->v = 1;
		}
		poke(q);
		p = p->next;
	}
}
`

func guardConflictBetween(t *testing.T, fn string) bool {
	t.Helper()
	prog := lang.MustParse(interprocGuardSrc)
	r, err := Analyze(prog, fn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := singleAccess(t, r, "S")
	tt := singleAccess(t, r, "T")
	_, _, ok := guard.Conflict(s.Guards, tt.Guards)
	return ok
}

func TestSummaryWrittenFieldsIncludeDataFields(t *testing.T) {
	prog := lang.MustParse(interprocGuardSrc)
	sums := Summarize(prog)
	if got := strings.Join(sums["poke"].WrittenFields, ","); got != "flag" {
		t.Errorf("poke.WrittenFields = %q, want flag", got)
	}
	// ModifiedFields (structural) stays empty: flag is a data field.
	if len(sums["poke"].ModifiedFields) != 0 {
		t.Errorf("poke.ModifiedFields = %v, want empty", sums["poke"].ModifiedFields)
	}
	// Transitive propagation through the call graph.
	if got := strings.Join(sums["chain"].WrittenFields, ","); got != "flag" {
		t.Errorf("chain.WrittenFields = %q, want flag (transitive)", got)
	}
}

func TestCallBoundaryInvalidatesFieldGuards(t *testing.T) {
	// A callee that writes the guard's field kills the conflict: the two
	// p->flag predicates get distinct versions.
	if guardConflictBetween(t, "poke_between") {
		t.Errorf("guard survived a call writing its field")
	}
	// Same through a transitive callee.
	if guardConflictBetween(t, "chain_between") {
		t.Errorf("guard survived a transitive call writing its field")
	}
	// An unknown callee may write anything: field guards must widen to ⊤.
	if guardConflictBetween(t, "opaque_between") {
		t.Errorf("field guard survived an unknown call")
	}
	// A callee writing a different field leaves the guard intact.
	if !guardConflictBetween(t, "harmless_between") {
		t.Errorf("guard lost to a call writing an unrelated field")
	}
	// Variable guards are immune to calls (no globals, address-taken
	// variables are never guarded).
	if !guardConflictBetween(t, "var_guard_survives") {
		t.Errorf("variable guard lost to an unknown call")
	}
}

func TestLoopCallWidensInvariantGuardsToTop(t *testing.T) {
	prog := lang.MustParse(interprocGuardSrc)
	r, err := Analyze(prog, "call_in_loop", Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := singleAccess(t, r, "A")
	if len(a.Guards) == 0 {
		t.Fatalf("A carries no guards at all")
	}
	// The loop body calls poke, which writes flag: the p->flag guard is
	// not loop-invariant and must widen out of InvGuards entirely.
	if len(a.InvGuards) != 0 {
		t.Errorf("InvGuards = %v, want ⊤ (loop body call writes the guard field)", a.InvGuards)
	}
}
