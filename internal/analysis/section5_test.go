package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prover"
)

// section5Src is the §5 scenario written in mini-C: a doubly nested walk
// over the element substructure of a sparse matrix, as factor's
// row-by-row/column-by-column steps perform.  The struct carries exactly
// the three axioms §5 lists.
const section5Src = `
struct Elem {
	struct Elem *ncolE;
	struct Elem *nrowE;
	double val;
	axioms {
		A1: forall p <> q, p.ncolE <> q.ncolE;
		A2: forall p, p.ncolE+ <> p.nrowE+;
		A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
	}
};

void scaleRows(struct Elem *first) {
	struct Elem *r;
	struct Elem *e;
	r = first;
L1:	while (r != NULL) {
		e = r->ncolE;
L2:		while (e != NULL) {
S:			e->val = e->val * 2.0;
			e = e->ncolE;
		}
		r = r->nrowE;
	}
}
`

// TestSection5_TheoremTFromSource is the paper's headline analysis run,
// fully automatic: parse the kernel, collect access paths (handles,
// induction variables for both loop levels, star widening), build the
// loop-carried queries, and let APT prove both loops parallel.  The outer
// query is exactly Theorem T: ∀hr, hr.ncolE⁺ <> hr.nrowE⁺ncolE⁺.
func TestSection5_TheoremTFromSource(t *testing.T) {
	prog := lang.MustParse(section5Src)
	res, err := Analyze(prog, "scaleRows", Options{})
	if err != nil {
		t.Fatal(err)
	}

	accs := res.AccessesAt("S")
	var write *Access
	for i := range accs {
		if accs[i].IsWrite {
			write = &accs[i]
		}
	}
	if write == nil {
		t.Fatalf("no write access at S: %+v", accs)
	}
	// S must be anchored at both loops' iteration handles.
	if len(write.IterDeltas) != 2 {
		t.Fatalf("iteration deltas = %v, want one per loop level", write.IterDeltas)
	}

	queries, err := res.LoopCarriedQueries("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 2 {
		t.Fatalf("got %d loop-carried queries, want 2 (L1 and L2)", len(queries))
	}

	tester := core.NewTester(res.Axioms, prover.Options{})
	sawTheoremT := false
	for _, q := range queries {
		out := tester.DepTest(q)
		if out.Result != core.No {
			t.Errorf("loop-carried query %v vs %v = %v (%s), want No",
				q.S, q.T, out.Result, out.Reason)
		}
		// The outer query's later-iteration path is nrowE⁺·ncolE·ncolE* —
		// Theorem T in the paper's original star spelling.
		if q.T.Path.String() == "nrowE+.ncolE.ncolE*" {
			sawTheoremT = true
		}
	}
	if !sawTheoremT {
		var got []string
		for _, q := range queries {
			got = append(got, q.T.Path.String())
		}
		t.Errorf("no query matched Theorem T's path; later-iteration paths: %v", got)
	}
}

// TestSection5_PartialAnalysisWithFillin adds the fill-in insertion (a store
// to a pointer field) into the loop: the simplistic analysis must now give
// up on the loop (axioms invalidated, §3.4), while the
// AssumeLoopInvariants analysis — the paper's "more sophisticated analysis
// capable of handling modifications" — still proves it parallel.  This is
// the partial/full split that produces Figure 7's two bands.
func TestSection5_PartialAnalysisWithFillin(t *testing.T) {
	src := `
struct Elem {
	struct Elem *ncolE;
	struct Elem *nrowE;
	double val;
	axioms {
		A1: forall p <> q, p.ncolE <> q.ncolE;
		A2: forall p, p.ncolE+ <> p.nrowE+;
		A3: forall p, p.(ncolE|nrowE)+ <> p.eps;
	}
};

void eliminate(struct Elem *first, struct Elem *fill) {
	struct Elem *r;
	r = first;
	while (r != NULL) {
S:		r->val = r->val - 1.0;
		r->ncolE = fill;
		r = r->nrowE;
	}
}
`
	prog := lang.MustParse(src)

	partial, err := Analyze(prog, "eliminate", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := partial.LoopCarriedQueries("S")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(partial.Axioms, prover.Options{})
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.Maybe {
			t.Errorf("partial analysis across fill-in = %v, want Maybe", out.Result)
		}
	}

	full, err := Analyze(prog, "eliminate", Options{AssumeLoopInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err = full.LoopCarriedQueries("S")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.No {
			t.Errorf("full analysis across fill-in = %v, want No", out.Result)
		}
	}
}

// TestSection5_InnerLoopHandles: within one outer iteration, the inner
// iteration handle anchors the precise per-element paths.
func TestSection5_InnerLoopHandles(t *testing.T) {
	prog := lang.MustParse(section5Src)
	res, err := Analyze(prog, "scaleRows", Options{})
	if err != nil {
		t.Fatal(err)
	}
	accs := res.AccessesAt("S")
	for _, a := range accs {
		foundInner := false
		for h, d := range a.IterDeltas {
			if d.String() == "ncolE" {
				foundInner = true
				if got := a.Paths[h].String(); got != "ε" {
					t.Errorf("inner-iteration path = %s, want ε", got)
				}
			}
		}
		if !foundInner {
			t.Errorf("access %v lacks the inner iteration anchor", a)
		}
	}
}
