package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/guard"
	"repro/internal/lang"
	"repro/internal/prover"
)

// guardedLoopSrc is the canonical guard-upgrade shape: the write at A runs
// only when mode is set, the read at B only when it is not, and the B-side
// path traverses the axiom-free jump field so the prover alone cannot
// separate the two.  mode is never assigned in the loop, so its guard is
// loop-invariant and the A↔B cross-iteration pairs upgrade to No.
const guardedLoopSrc = `
struct T {
	struct T *next;
	struct T *jump;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void f(struct T *h, int mode) {
	struct T *p;
	struct T *r;
	int t;
	p = h;
	while (p != NULL) {
		if (mode) {
A:			p->v = 1;
		} else {
			r = p->jump;
			if (r != NULL) {
B:				t = t + r->v;
			}
		}
		p = p->next;
	}
}
`

func analyzeGuarded(t *testing.T, src, fn string) *Result {
	t.Helper()
	prog := lang.MustParse(src)
	r, err := Analyze(prog, fn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func singleAccess(t *testing.T, r *Result, label string) Access {
	t.Helper()
	accs := r.AccessesAt(label)
	if len(accs) != 1 {
		t.Fatalf("label %s: %d accesses, want 1", label, len(accs))
	}
	return accs[0]
}

func TestGuardsAttachWithSigns(t *testing.T) {
	r := analyzeGuarded(t, guardedLoopSrc, "f")
	a := singleAccess(t, r, "A")
	b := singleAccess(t, r, "B")

	wantContains := func(s guard.Set, text string) {
		t.Helper()
		if !strings.Contains(s.String(), text) {
			t.Errorf("guard set %v does not contain %q", s, text)
		}
	}
	wantContains(a.Guards, "mode")
	wantContains(b.Guards, "!(mode)")

	// The two mode references must share one predicate with opposite
	// signs (mode is never modified between the branches).
	if _, _, ok := guard.Conflict(a.Guards, b.Guards); !ok {
		t.Fatalf("Conflict(A=%v, B=%v) = false, want true", a.Guards, b.Guards)
	}

	// mode is loop-invariant: its guard survives into InvGuards on both
	// sides.  The inner r != NULL guard is loop-variant (r is assigned
	// each iteration) and must be filtered from B's InvGuards.
	if _, _, ok := guard.Conflict(a.InvGuards, b.InvGuards); !ok {
		t.Fatalf("invariant Conflict(A=%v, B=%v) = false, want true", a.InvGuards, b.InvGuards)
	}
	if s := b.Guards.String(); !strings.Contains(s, "NULL == r") {
		t.Errorf("B full guards %v missing the r != NULL atom", b.Guards)
	}
	if s := b.InvGuards.String(); strings.Contains(s, "r") {
		t.Errorf("B invariant guards %v kept the loop-variant r guard", b.InvGuards)
	}
}

func TestLoopCarriedPairUpgradesOnGuardConflict(t *testing.T) {
	r := analyzeGuarded(t, guardedLoopSrc, "f")
	a := singleAccess(t, r, "A")
	b := singleAccess(t, r, "B")

	tester := core.NewTester(r.Axioms, prover.Options{})
	pairs := append(r.LoopCarriedPair(a, b), r.LoopCarriedPair(b, a)...)
	if len(pairs) == 0 {
		t.Fatal("no cross-iteration A↔B queries")
	}
	for _, q := range pairs {
		out := tester.DepTest(q)
		if out.Result != core.No || !out.GuardUpgraded {
			t.Errorf("A↔B query %v vs %v: got %s (upgraded=%v), want guard-upgraded No",
				q.S, q.T, out.Result, out.GuardUpgraded)
		}
		if !strings.Contains(out.Reason, "mode") || !strings.Contains(out.Reason, "mutually exclusive") {
			t.Errorf("Reason %q does not cite the contradicting guards", out.Reason)
		}
	}

	// Without the path-sensitivity layer these same queries are Maybe:
	// the jump field has no axioms.
	for _, q := range pairs {
		q.SGuards, q.TGuards = nil, nil
		out := tester.DepTest(q)
		if out.Result != core.Maybe {
			t.Errorf("guard-free A↔B query: got %s, want Maybe (axiom-free jump field)", out.Result)
		}
	}

	// A's self-dependence is proved by acyclicity alone — no guard credit.
	for _, q := range r.LoopCarriedSelf(a) {
		out := tester.DepTest(q)
		if out.Result != core.No || out.GuardUpgraded {
			t.Errorf("A self query: got %s (upgraded=%v), want plain No", out.Result, out.GuardUpgraded)
		}
	}
}

// TestReassignmentBlocksConflict: a variable reassigned between two
// branches yields distinct predicate versions, so opposite signs on the
// same text must NOT conflict.
func TestReassignmentBlocksConflict(t *testing.T) {
	src := `
struct T {
	struct T *next;
	int v;
};

void g(struct T *a, struct T *b, int mode) {
	if (mode) {
S:		a->v = 1;
	}
	mode = mode - 1;
	if (!mode) {
T:		b->v = a->v;
	}
}
`
	r := analyzeGuarded(t, src, "g")
	s := singleAccess(t, r, "S")
	if _, _, ok := guard.Conflict(s.Guards, r.AccessesAt("T")[0].Guards); ok {
		t.Fatalf("conflict across a reassignment of the guard variable")
	}
	qs, err := r.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(r.Axioms, prover.Options{})
	for _, q := range qs {
		if out := tester.DepTest(q); out.GuardUpgraded {
			t.Errorf("query %v vs %v upgraded despite reassigned guard variable", q.S, q.T)
		}
	}
}

// TestStraightLineConflictUpgrades: without any reassignment the same
// pattern upgrades, and the reason names both guards.
func TestStraightLineConflictUpgrades(t *testing.T) {
	src := `
struct T {
	struct T *next;
	int v;
};

void g(struct T *a, struct T *b, int mode) {
	if (mode) {
S:		a->v = 1;
	}
	if (!mode) {
T:		b->v = a->v;
	}
}
`
	r := analyzeGuarded(t, src, "g")
	qs, err := r.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(r.Axioms, prover.Options{})
	upgraded := 0
	for _, q := range qs {
		out := tester.DepTest(q)
		if out.Result == core.No && out.GuardUpgraded {
			upgraded++
			if !strings.Contains(out.Reason, "mode") {
				t.Errorf("Reason %q does not name the guard", out.Reason)
			}
		}
	}
	if upgraded == 0 {
		t.Fatalf("no straight-line query upgraded")
	}
}

// TestAddressTakenVarsAreNeverGuarded: a variable whose address escapes
// can change behind the analysis's back, so it must not generate guards.
func TestAddressTakenVarsAreNeverGuarded(t *testing.T) {
	src := `
struct T {
	struct T *next;
	int v;
};

void g(struct T *a, struct T *b, int mode) {
	int x;
	x = &mode;
	if (mode) {
S:		a->v = 1;
	}
	if (!mode) {
T:		b->v = 2;
	}
}
`
	r := analyzeGuarded(t, src, "g")
	s := singleAccess(t, r, "S")
	tt := singleAccess(t, r, "T")
	if len(s.Guards) != 0 || len(tt.Guards) != 0 {
		t.Fatalf("address-taken variable generated guards: S=%v T=%v", s.Guards, tt.Guards)
	}
}

// TestGuardEqFactInfeasible: a branch on x == y whose comparand paths the
// acyclicity axiom separates makes the guarded access dead code.
func TestGuardEqFactInfeasible(t *testing.T) {
	src := `
struct T {
	struct T *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void g(struct T *h) {
	struct T *x;
	struct T *y;
	x = h;
	y = h->next;
	if (x == y) {
S:		x->v = 1;
	}
T:	h->v = 2;
}
`
	r := analyzeGuarded(t, src, "g")
	s := singleAccess(t, r, "S")
	if len(s.Guards) != 1 || s.Guards[0].P.Eq() == nil {
		t.Fatalf("S guards = %v, want one equality predicate with a fact", s.Guards)
	}
	qs, err := r.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(r.Axioms, prover.Options{})
	found := false
	for _, q := range qs {
		out := tester.DepTest(q)
		if out.Result == core.No && out.GuardUpgraded {
			found = true
			if !strings.Contains(out.Reason, "infeasible") || !strings.Contains(out.Reason, "x") {
				t.Errorf("Reason %q does not explain the infeasible guard", out.Reason)
			}
		}
	}
	if !found {
		t.Fatalf("no query refuted the x == y guard")
	}
}
