// Package analysis implements APT's memory-reference analysis (paper §3.3):
// a flow-sensitive, intraprocedural abstract interpretation of mini-C
// functions that maintains an Access Path Matrix (APM) at every program
// point.
//
// An APM row is a handle — a fixed (but unknown) vertex of the data
// structure, created whenever a pointer variable is assigned a new value.
// An APM cell APM[h][v] is a path expression describing how the current
// value of pointer variable v was reached from handle h.  Assigning a
// pointer relative to itself (p = p->f) extends p's existing paths instead
// of creating a handle — the rule that makes loop induction variables
// analyzable.  Loop bodies are widened with Kleene stars and re-analyzed at
// the fixpoint, where a synthetic per-iteration handle is planted so that
// loop-carried queries can be phrased exactly as §5 does: iteration i
// accesses h.A, any later iteration accesses h.δ⁺A.
//
// Structural modifications (stores to pointer fields) are tracked per §3.4:
// they invalidate access paths that traverse the stored field, and
// dependence queries spanning a modification use the intersection of the
// axiom sets valid before and after — implemented as dropping every axiom
// that constrains a modified field.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axiom"
	"repro/internal/guard"
	"repro/internal/lang"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// Options configures the analysis.
type Options struct {
	// CallsModifyStructure treats every opaque call as a potential
	// structural modification of every pointer field.  The default (false)
	// assumes callees maintain the declared axioms — the paper's Figure 1
	// implicitly assumes insert() preserves list-ness.
	CallsModifyStructure bool
	// AssumeLoopInvariants models the paper's "more sophisticated analysis
	// capable of handling modifications" (the fully-parallel configuration
	// of §5): structural modifications inside a loop are assumed to
	// re-establish the axioms at each iteration boundary, so loop-carried
	// queries keep the full axiom set.
	AssumeLoopInvariants bool
	// InferTypeAxioms adds the Appendix A style inferred axioms: pointer
	// fields with different target types lead to different vertices.
	InferTypeAxioms bool
	// Telemetry receives per-function analysis spans, widening events, and
	// aggregate counters.  Nil (the default) disables instrumentation.
	Telemetry *telemetry.Set
}

// Access records one memory reference var->Field observed by the analysis.
type Access struct {
	Label   string
	Stmt    int // statement ordinal within the function walk
	Var     string
	Field   string
	Type    string // struct type of *var
	IsWrite bool
	// Paths maps handle name to the access path of Var at this point.
	Paths map[string]pathexpr.Expr
	// IterDeltas maps a synthetic loop-iteration handle (present in Paths)
	// to the loop's per-iteration increment for Var's anchor.
	IterDeltas map[string]pathexpr.Expr
	// ModEpoch is the number of structural modification sites executed
	// before this access (in straight-line order).
	ModEpoch int
	// LoopModFields lists pointer fields structurally modified anywhere in
	// the loops enclosing this access (empty when not in a loop or no mods).
	LoopModFields []string
	// Guards is the conjunction of dominating branch predicates under which
	// this access executes (positive on then-edges, negated on else-edges).
	// Sound for same-execution-instance comparisons: predicate identity
	// already encodes "nothing the condition reads changed in between".
	Guards guard.Set
	// InvGuards is the subset of Guards that is loop-invariant with respect
	// to every enclosing loop — the only guards usable when the two sides
	// of a query come from different iterations (see LoopCarriedPair).
	InvGuards guard.Set
	Pos       lang.Pos
}

// ModSite is one structural modification: a store to a pointer field.
type ModSite struct {
	Epoch int
	Field string
	Label string
	Pos   lang.Pos
}

// Result is the analysis outcome for one function.
type Result struct {
	Fn       *lang.FuncDecl
	Accesses []Access
	Mods     []ModSite
	// APMs holds the access path matrix captured just before each labeled
	// statement, keyed by label.
	APMs map[string]*APM
	// Axioms is the merged axiom set of every struct the function touches,
	// plus inferred type-disjointness axioms when enabled.
	Axioms *axiom.Set
	opts   Options
}

// APM is a snapshot of the access path matrix: rows are handles, columns are
// pointer variables.
type APM struct {
	// Cells maps handle -> var -> path.
	Cells map[string]map[string]pathexpr.Expr
}

// Lookup returns the path for (handle, variable), if present.
func (m *APM) Lookup(handle, v string) (pathexpr.Expr, bool) {
	row, ok := m.Cells[handle]
	if !ok {
		return nil, false
	}
	p, ok := row[v]
	return p, ok
}

// Handles returns the sorted handle names.
func (m *APM) Handles() []string {
	out := make([]string, 0, len(m.Cells))
	for h := range m.Cells {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Vars returns the sorted variable names mentioned in any row.
func (m *APM) Vars() []string {
	set := map[string]bool{}
	for _, row := range m.Cells {
		for v := range row {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// String renders the APM as the paper's tables do.
func (m *APM) String() string {
	vars := m.Vars()
	var b strings.Builder
	b.WriteString("APM")
	for _, v := range vars {
		fmt.Fprintf(&b, "\t%s", v)
	}
	b.WriteByte('\n')
	for _, h := range m.Handles() {
		b.WriteString(h)
		for _, v := range vars {
			b.WriteByte('\t')
			if p, ok := m.Cells[h][v]; ok {
				b.WriteString(pathexpr.Compact(p))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// state is the in-flight abstract state.
type state struct {
	// cells[handle][var] = path from handle to var's target.
	cells map[string]map[string]pathexpr.Expr
	// modEpoch counts structural modification sites executed so far.
	modEpoch int
}

func newState() *state {
	return &state{cells: make(map[string]map[string]pathexpr.Expr)}
}

func (s *state) clone() *state {
	c := &state{cells: make(map[string]map[string]pathexpr.Expr, len(s.cells)), modEpoch: s.modEpoch}
	for h, row := range s.cells {
		nr := make(map[string]pathexpr.Expr, len(row))
		for v, p := range row {
			nr[v] = p
		}
		c.cells[h] = nr
	}
	return c
}

func (s *state) set(handle, v string, p pathexpr.Expr) {
	row := s.cells[handle]
	if row == nil {
		row = make(map[string]pathexpr.Expr)
		s.cells[handle] = row
	}
	row[v] = pathexpr.Simplify(p)
}

// dropVar removes every entry for v and garbage-collects empty handles.
func (s *state) dropVar(v string) {
	for h, row := range s.cells {
		delete(row, v)
		if len(row) == 0 {
			delete(s.cells, h)
		}
	}
}

// pathsOf returns a copy of v's handle→path map.
func (s *state) pathsOf(v string) map[string]pathexpr.Expr {
	out := make(map[string]pathexpr.Expr)
	for h, row := range s.cells {
		if p, ok := row[v]; ok {
			out[h] = p
		}
	}
	return out
}

func (s *state) snapshot() *APM {
	return &APM{Cells: s.clone().cells}
}

// join merges two states at a control-flow merge: equal paths survive,
// differing paths join by alternation, entries present on only one side are
// dropped (their value on the other path is unknown).
func join(a, b *state) *state {
	out := newState()
	for h, rowA := range a.cells {
		rowB, ok := b.cells[h]
		if !ok {
			continue
		}
		for v, pa := range rowA {
			pb, ok := rowB[v]
			if !ok {
				continue
			}
			if pathexpr.Equal(pa, pb) {
				out.set(h, v, pa)
			} else {
				out.set(h, v, pathexpr.Or(pa, pb))
			}
		}
	}
	out.modEpoch = maxInt(a.modEpoch, b.modEpoch)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
