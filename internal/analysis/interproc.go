package analysis

import (
	"sort"

	"repro/internal/lang"
	"repro/internal/pathexpr"
)

// Summary abstracts a callee for use at call sites: which pointer fields it
// may structurally modify (transitively), whether it calls functions the
// program does not define, and — for simple accessor functions — the access
// path its return value takes from one of its parameters.
type Summary struct {
	Name string
	// ModifiedFields lists pointer fields the function may store to,
	// including through calls to other defined functions.
	ModifiedFields []string
	// WrittenFields lists every struct field the function may write — data
	// fields as well as pointer fields, transitively through calls.  This
	// is the guard versioner's invalidation set at call sites: a branch
	// predicate reading any of these fields cannot survive the call.
	WrittenFields []string
	// CallsUnknown reports that the function (transitively) calls a
	// function the program does not define, whose effects are unknown.
	CallsUnknown bool
	// RetKnown reports the return value is param #RetParam advanced by
	// RetPath (only derived for straight-line pointer accessors).
	RetKnown bool
	RetParam int
	RetPath  pathexpr.Expr
}

// Summarize computes summaries for every function in the program.  The
// modified-field sets are a fixpoint over the call graph, so recursion and
// mutual recursion are handled; return paths are extracted only from
// loop-free bodies (typical accessors).
func Summarize(prog *lang.Program) map[string]*Summary {
	sums := make(map[string]*Summary, len(prog.Funcs))
	for _, fn := range prog.Funcs {
		sums[fn.Name] = &Summary{Name: fn.Name}
	}

	// Direct structural stores and call edges.
	var edges []callEdge
	for _, fn := range prog.Funcs {
		s := sums[fn.Name]
		modSet := map[string]bool{}
		writeSet := map[string]bool{}
		paramTypes := map[string]string{}
		for _, p := range fn.Params {
			if p.Type.IsPointerToStruct() {
				paramTypes[p.Name] = p.Type.Base
			}
		}
		varTypes := map[string]string{}
		for k, v := range paramTypes {
			varTypes[k] = v
		}
		walkStmts(fn.Body, func(st lang.Stmt) {
			switch v := st.(type) {
			case *lang.DeclStmt:
				for _, item := range v.Items {
					if item.Type.IsPointerToStruct() {
						varTypes[item.Name] = item.Type.Base
					}
				}
			case *lang.AssignStmt:
				if fa, ok := v.LHS.(*lang.FieldAccess); ok {
					writeSet[fa.Field] = true
					if isPointerFieldOf(prog, varTypes[fa.Base], fa.Field) {
						modSet[fa.Field] = true
					}
				}
				collectCalls(v.RHS, fn.Name, prog, &edges, s)
			case *lang.ExprStmt:
				collectCalls(v.X, fn.Name, prog, &edges, s)
			case *lang.IfStmt:
				collectCalls(v.Cond, fn.Name, prog, &edges, s)
			case *lang.WhileStmt:
				collectCalls(v.Cond, fn.Name, prog, &edges, s)
			case *lang.ReturnStmt:
				collectCalls(v.Value, fn.Name, prog, &edges, s)
			}
		})
		for f := range modSet {
			s.ModifiedFields = append(s.ModifiedFields, f)
		}
		sort.Strings(s.ModifiedFields)
		for f := range writeSet {
			s.WrittenFields = append(s.WrittenFields, f)
		}
		sort.Strings(s.WrittenFields)
	}

	// Propagate modified fields and unknown-call taint to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			from, to := sums[e.from], sums[e.to]
			if to.CallsUnknown && !from.CallsUnknown {
				from.CallsUnknown = true
				changed = true
			}
			have := map[string]bool{}
			for _, f := range from.ModifiedFields {
				have[f] = true
			}
			for _, f := range to.ModifiedFields {
				if !have[f] {
					from.ModifiedFields = append(from.ModifiedFields, f)
					changed = true
				}
			}
			haveW := map[string]bool{}
			for _, f := range from.WrittenFields {
				haveW[f] = true
			}
			for _, f := range to.WrittenFields {
				if !haveW[f] {
					from.WrittenFields = append(from.WrittenFields, f)
					changed = true
				}
			}
		}
	}
	for _, s := range sums {
		sort.Strings(s.ModifiedFields)
		sort.Strings(s.WrittenFields)
	}

	// Return paths for loop-free accessors.
	for _, fn := range prog.Funcs {
		extractReturnPath(prog, fn, sums[fn.Name])
	}
	return sums
}

// callEdge is one static call-graph edge between defined functions.
type callEdge struct{ from, to string }

func collectCalls(e lang.Expr, from string, prog *lang.Program, edges *[]callEdge, s *Summary) {
	lang.WalkExprs(e, func(x lang.Expr) {
		call, ok := x.(*lang.CallExpr)
		if !ok {
			return
		}
		if prog.Func(call.Name) != nil {
			*edges = append(*edges, callEdge{from, call.Name})
		} else {
			s.CallsUnknown = true
		}
	})
}

func isPointerFieldOf(prog *lang.Program, structName, field string) bool {
	sd := prog.Struct(structName)
	if sd == nil {
		return false
	}
	fd := sd.Field(field)
	return fd != nil && fd.Type.IsPointerToStruct()
}

// walkStmts visits every statement in the block, recursively.
func walkStmts(b *lang.Block, fn func(lang.Stmt)) {
	for _, s := range b.Stmts {
		fn(s)
		switch v := s.(type) {
		case *lang.BlockStmt:
			walkStmts(v.Body, fn)
		case *lang.IfStmt:
			walkStmts(v.Then, fn)
			if v.Else != nil {
				walkStmts(v.Else, fn)
			}
		case *lang.WhileStmt:
			walkStmts(v.Body, fn)
		}
	}
}

// extractReturnPath derives the param-relative path of the return value for
// loop-free bodies by symbolic forward substitution: each pointer variable
// is tracked as (param index, path) when derivable.
func extractReturnPath(prog *lang.Program, fn *lang.FuncDecl, s *Summary) {
	// Bail out on loops or branching (joins could merge different params).
	simple := true
	walkStmts(fn.Body, func(st lang.Stmt) {
		switch st.(type) {
		case *lang.WhileStmt, *lang.IfStmt:
			simple = false
		}
	})
	if !simple {
		return
	}

	type origin struct {
		param int
		path  pathexpr.Expr
	}
	env := map[string]origin{}
	varTypes := map[string]string{}
	for i, p := range fn.Params {
		if p.Type.IsPointerToStruct() {
			env[p.Name] = origin{param: i, path: pathexpr.Eps}
			varTypes[p.Name] = p.Type.Base
		}
	}
	var ret *origin
	for _, st := range fn.Body.Stmts {
		switch v := st.(type) {
		case *lang.DeclStmt:
			for _, item := range v.Items {
				if item.Type.IsPointerToStruct() {
					varTypes[item.Name] = item.Type.Base
				}
			}
		case *lang.AssignStmt:
			lhs, ok := v.LHS.(*lang.Ident)
			if !ok {
				continue
			}
			switch rhs := v.RHS.(type) {
			case *lang.Ident:
				if o, ok := env[rhs.Name]; ok {
					env[lhs.Name] = o
				} else {
					delete(env, lhs.Name)
				}
			case *lang.FieldAccess:
				o, ok := env[rhs.Base]
				if ok && isPointerFieldOf(prog, varTypes[rhs.Base], rhs.Field) {
					env[lhs.Name] = origin{param: o.param, path: pathexpr.Cat(o.path, pathexpr.F(rhs.Field))}
					if varTypes[lhs.Name] == "" {
						varTypes[lhs.Name] = fieldTarget(prog, varTypes[rhs.Base], rhs.Field)
					}
				} else {
					delete(env, lhs.Name)
				}
			default:
				delete(env, lhs.Name)
			}
		case *lang.ReturnStmt:
			if id, ok := v.Value.(*lang.Ident); ok {
				if o, ok := env[id.Name]; ok {
					ret = &o
				}
			} else if fa, ok := v.Value.(*lang.FieldAccess); ok {
				if o, ok := env[fa.Base]; ok && isPointerFieldOf(prog, varTypes[fa.Base], fa.Field) {
					ret = &origin{param: o.param, path: pathexpr.Cat(o.path, pathexpr.F(fa.Field))}
				}
			}
		}
	}
	if ret != nil {
		s.RetKnown = true
		s.RetParam = ret.param
		s.RetPath = ret.path
	}
}

func fieldTarget(prog *lang.Program, structName, field string) string {
	sd := prog.Struct(structName)
	if sd == nil {
		return ""
	}
	fd := sd.Field(field)
	if fd == nil {
		return ""
	}
	return fd.Type.Base
}
