package analysis

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/prover"
)

// These tests close the loop between the static pipeline and reality: the
// same mini-C program is (a) analyzed — parse, APM analysis, deptest — and
// (b) executed concretely on conforming heaps with every labeled access
// recorded.  A static No must mean the recorded vertex sets never overlap;
// a static Yes must be witnessed by an actual collision.

// disjointEvents reports whether the events of two labels touch disjoint
// vertex sets (same field only).
func disjointEvents(a, b []interp.Event) bool {
	seen := map[heap.Vertex]map[string]bool{}
	for _, e := range a {
		if seen[e.Vertex] == nil {
			seen[e.Vertex] = map[string]bool{}
		}
		seen[e.Vertex][e.Field] = true
	}
	for _, e := range b {
		if fields, ok := seen[e.Vertex]; ok && fields[e.Field] {
			return false
		}
	}
	return true
}

// TestValidateSection33AgainstExecution: deptest's No for S→T is confirmed
// by execution on a family of conforming trees.
func TestValidateSection33AgainstExecution(t *testing.T) {
	prog := lang.MustParse(section33Src)
	res, err := Analyze(prog, "subr", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	out := tester.DepTest(qs[0])
	if out.Result != core.No {
		t.Fatalf("static verdict = %v, want No", out.Result)
	}

	rng := rand.New(rand.NewSource(3))
	validated := 0
	// subr's fixed traversal (two L hops then N) requires its argument to
	// root a height-2 subtree; anchor at every such vertex of complete
	// trees of several depths (level depth-2 in heap order).
	for depth := 2; depth <= 4; depth++ {
		g, _ := heap.BuildLeafLinkedTree(depth)
		level := depth - 2
		for anchor := (1 << level) - 1; anchor < (1<<(level+1))-1; anchor++ {
			in := interp.New(prog, g, interp.Options{})
			if _, trace, err := in.Run("subr", interp.Ptr(heap.Vertex(anchor))); err == nil {
				if !disjointEvents(trace.At("S"), trace.At("T")) {
					t.Fatalf("depth %d anchor %d: static No contradicted by execution", depth, anchor)
				}
				validated++
			}
		}
	}
	for trial := 0; trial < 10; trial++ {
		g, root := heap.RandomLeafLinkedTree(rng, 8+rng.Intn(12))
		in := interp.New(prog, g, interp.Options{})
		// Some random shapes make subr dereference a nil child; those runs
		// simply do not execute both statements.
		if _, trace, err := in.Run("subr", interp.Ptr(root)); err == nil {
			if !disjointEvents(trace.At("S"), trace.At("T")) {
				t.Fatal("static No contradicted by execution on a random tree")
			}
			validated++
		}
	}
	if validated < 3 {
		t.Fatalf("only %d runs completed; validation has no power", validated)
	}
}

// TestValidateLoopAgainstExecution: the loop-carried No for the list-update
// loop means no vertex+field is written by two different iterations.
func TestValidateLoopAgainstExecution(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = 1;
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.LoopCarriedQueries("U")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	for _, q := range qs {
		if tester.DepTest(q).Result != core.No {
			t.Fatal("expected static No")
		}
	}

	for _, n := range []int{1, 3, 8} {
		g, head := heap.BuildList(n, "link")
		in := interp.New(prog, g, interp.Options{})
		_, trace, err := in.Run("update", interp.Ptr(head))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[heap.Vertex]bool{}
		for _, e := range trace.At("U") {
			if seen[e.Vertex] {
				t.Fatalf("n=%d: iteration write revisited vertex %d, contradicting the static No", n, e.Vertex)
			}
			seen[e.Vertex] = true
		}
	}
}

// TestValidateSection5AgainstExecution: the §5 nested row walk touches each
// element exactly once — the concrete witness of Theorem T.
func TestValidateSection5AgainstExecution(t *testing.T) {
	prog := lang.MustParse(section5Src)
	res, err := Analyze(prog, "scaleRows", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.LoopCarriedQueries("S")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	for _, q := range qs {
		if tester.DepTest(q).Result != core.No {
			t.Fatal("expected static No for both loop levels")
		}
	}

	// Build a full 3×4 element grid; scaleRows starts at element (0,0) and
	// walks nrowE down column 0, then ncolE along each row.  The mini-C
	// declaration binds ncolE/nrowE as Elem's fields, matching the builder.
	var pos [][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			pos = append(pos, [2]int{i, j})
		}
	}
	g, lay := heap.BuildSparseMatrix(3, 4, pos)
	in := interp.New(prog, g, interp.Options{})
	first := lay.Elem[[2]int{0, 0}]
	_, trace, err := in.Run("scaleRows", interp.Ptr(first))
	if err != nil {
		t.Fatal(err)
	}
	writes := map[heap.Vertex]int{}
	for _, e := range trace.At("S") {
		if e.IsWrite {
			writes[e.Vertex]++
		}
	}
	for v, count := range writes {
		if count != 1 {
			t.Errorf("element vertex %d written %d times; Theorem T says once", v, count)
		}
	}
	// r walks column 0 (3 rows); each inner walk starts at r->ncolE, so the
	// column-0 elements themselves are skipped: 3 rows × 3 remaining
	// columns = 9 distinct elements.
	if len(writes) != 9 {
		t.Errorf("wrote %d elements, want 9", len(writes))
	}
}

// TestValidateYesIsWitnessed: a static Yes corresponds to an actual
// collision in the execution.
func TestValidateYesIsWitnessed(t *testing.T) {
	src := `
struct Node { struct Node *link; int f; };
void twice(struct Node *head) {
	struct Node *p;
	struct Node *q;
	p = head->link;
	q = head->link;
S:	p->f = 1;
T:	q->f = 2;
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "twice", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	sawYes := false
	for _, q := range qs {
		if tester.DepTest(q).Result == core.Yes {
			sawYes = true
		}
	}
	if !sawYes {
		t.Fatal("expected a static Yes for the double write")
	}
	g, head := heap.BuildList(3, "link")
	in := interp.New(prog, g, interp.Options{})
	_, trace, err := in.Run("twice", interp.Ptr(head))
	if err != nil {
		t.Fatal(err)
	}
	if disjointEvents(trace.At("S"), trace.At("T")) {
		t.Fatal("static Yes not witnessed by the execution")
	}
}
