package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/axiom"
	"repro/internal/core"
	"repro/internal/pathexpr"
)

// AccessesAt returns the accesses recorded at the given statement label.
func (r *Result) AccessesAt(label string) []Access {
	var out []Access
	for _, a := range r.Accesses {
		if a.Label == label {
			out = append(out, a)
		}
	}
	return out
}

// windowAxioms returns the axiom set valid across the window between two
// access epochs (§3.4): the declared axioms minus every axiom constraining
// a field structurally modified in between, plus any extra fields to drop
// (e.g. fields modified somewhere in an enclosing loop for loop-carried
// queries).
func (r *Result) windowAxioms(epochS, epochT int, extraFields []string) *axiom.Set {
	lo, hi := epochS, epochT
	if lo > hi {
		lo, hi = hi, lo
	}
	drop := map[string]bool{}
	for _, m := range r.Mods {
		if m.Epoch >= lo && m.Epoch < hi {
			drop[m.Field] = true
		}
	}
	for _, f := range extraFields {
		drop[f] = true
	}
	if drop["*"] {
		// An opaque structural modification invalidates everything.
		return &axiom.Set{StructName: r.Axioms.StructName}
	}
	if len(drop) == 0 {
		return r.Axioms
	}
	fields := make([]string, 0, len(drop))
	for f := range drop {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	return r.Axioms.WithoutFields(fields...)
}

// commonHandle picks a handle shared by both path maps.  Synthetic
// iteration handles are preferred: for two accesses in the same iteration
// they anchor the shortest (most precise) paths.  Straight-line code has no
// iteration handles, so the choice is inert there.  Names sort for
// determinism.  ok is false when the accesses share no anchor.
func commonHandle(a, b map[string]pathexpr.Expr) (string, bool) {
	var shared []string
	for h := range a {
		if _, ok := b[h]; ok {
			shared = append(shared, h)
		}
	}
	if len(shared) == 0 {
		return "", false
	}
	sort.Slice(shared, func(i, j int) bool {
		ii, ij := strings.HasPrefix(shared[i], "_it"), strings.HasPrefix(shared[j], "_it")
		if ii != ij {
			return ii
		}
		return shared[i] < shared[j]
	})
	return shared[0], true
}

// QueriesBetween builds the dependence queries from statement S to statement
// T along straight-line execution: one per (access at S, access at T) pair
// with at least one write.  Both accesses must share a handle — the paper's
// "scan the APMs for a handle common to both p and q".
func (r *Result) QueriesBetween(labelS, labelT string) ([]core.Query, error) {
	sAccs := r.AccessesAt(labelS)
	tAccs := r.AccessesAt(labelT)
	if len(sAccs) == 0 {
		return nil, fmt.Errorf("analysis: no accesses at label %q", labelS)
	}
	if len(tAccs) == 0 {
		return nil, fmt.Errorf("analysis: no accesses at label %q", labelT)
	}
	var out []core.Query
	for _, s := range sAccs {
		for _, t := range tAccs {
			if !s.IsWrite && !t.IsWrite {
				continue
			}
			axioms := r.windowAxioms(s.ModEpoch, t.ModEpoch, nil)
			if h, ok := commonHandle(s.Paths, t.Paths); ok {
				out = append(out, core.Query{
					Axioms: axioms,
					S: core.Access{
						Handle: h, Path: s.Paths[h], Field: s.Field,
						Type: s.Type, IsWrite: s.IsWrite,
					},
					T: core.Access{
						Handle: h, Path: t.Paths[h], Field: t.Field,
						Type: t.Type, IsWrite: t.IsWrite,
					},
					// Straight-line S→T: both sides belong to one execution
					// instance, so the full guard sets apply.
					SGuards: s.Guards,
					TGuards: t.Guards,
				})
				continue
			}
			// No common handle: fall back to the unknown-relation form
			// (§4.1: "the test for different handles is nearly identical,
			// although its accuracy depends on knowing the relationship
			// between the two handles").  deptest then requires proofs for
			// both the same- and distinct-anchor cases.
			hs, okS := anyHandle(s.Paths)
			ht, okT := anyHandle(t.Paths)
			if !okS || !okT {
				continue
			}
			out = append(out, core.Query{
				Axioms:   axioms,
				Relation: core.UnknownHandles,
				S: core.Access{
					Handle: hs, Path: s.Paths[hs], Field: s.Field,
					Type: s.Type, IsWrite: s.IsWrite,
				},
				T: core.Access{
					Handle: ht, Path: t.Paths[ht], Field: t.Field,
					Type: t.Type, IsWrite: t.IsWrite,
				},
				SGuards: s.Guards,
				TGuards: t.Guards,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no conflicting access pair with usable handles between %q and %q", labelS, labelT)
	}
	return out, nil
}

// anyHandle picks the deterministic first handle of a path map, preferring
// the longest path (most structural information).
func anyHandle(paths map[string]pathexpr.Expr) (string, bool) {
	best := ""
	bestSize := -1
	for h, p := range paths {
		if s := p.Size(); s > bestSize || (s == bestSize && h < best) {
			best, bestSize = h, s
		}
	}
	return best, best != ""
}

// LoopCarriedQueries builds the loop-carried self-dependence queries for the
// statement at the given label, which must lie inside a loop with an
// analyzable induction variable.  For an access with per-iteration path A
// and increment δ, iterations i < j access h.A and h.δ⁺A from the synthetic
// iteration handle h (§5's formulation).
func (r *Result) LoopCarriedQueries(label string) ([]core.Query, error) {
	accs := r.AccessesAt(label)
	if len(accs) == 0 {
		return nil, fmt.Errorf("analysis: no accesses at label %q", label)
	}
	var out []core.Query
	for _, a := range accs {
		out = append(out, r.LoopCarriedSelf(a)...)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: label %q has no written access inside an analyzable loop", label)
	}
	return out, nil
}

// LoopCarriedSelf builds the loop-carried self-dependence queries for one
// recorded access: nil unless the access writes inside a loop with an
// analyzable induction variable.
func (r *Result) LoopCarriedSelf(a Access) []core.Query {
	if !a.IsWrite {
		// A read conflicts across iterations only with writes; the
		// write access produces those queries.
		return nil
	}
	var out []core.Query
	for ih, delta := range a.IterDeltas {
		axioms := r.Axioms
		if !r.opts.AssumeLoopInvariants {
			axioms = r.windowAxioms(0, 0, a.LoopModFields)
		}
		q := core.LoopCarried(axioms, ih, delta, a.Paths[ih], a.Field, a.IsWrite)
		q.S.Type, q.T.Type = a.Type, a.Type
		// Both sides are the same access, so both carry its full guard
		// set: a syntactic conflict can only arise from a set that
		// contradicts itself (dead code in every iteration), and an
		// infeasible guard kills the access in every iteration — both
		// sound regardless of loop variance.
		q.SGuards, q.TGuards = a.Guards, a.Guards
		out = append(out, q)
	}
	return out
}

// LoopCarriedBetween builds cross-iteration queries between two statements
// in the same loop: statement S at iteration i against statement T at a
// later iteration j > i.
func (r *Result) LoopCarriedBetween(labelS, labelT string) ([]core.Query, error) {
	sAccs := r.AccessesAt(labelS)
	tAccs := r.AccessesAt(labelT)
	var out []core.Query
	for _, s := range sAccs {
		for _, t := range tAccs {
			out = append(out, r.LoopCarriedPair(s, t)...)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no loop-carried pair between %q and %q", labelS, labelT)
	}
	return out, nil
}

// LoopCarriedPair builds the cross-iteration queries between two recorded
// accesses of the same loop (s at iteration i, t at iteration j > i): one
// per iteration handle the two accesses advance in lockstep.  Nil when
// neither access writes or the accesses share no induction handle.
func (r *Result) LoopCarriedPair(s, t Access) []core.Query {
	if !s.IsWrite && !t.IsWrite {
		return nil
	}
	var out []core.Query
	for ih, delta := range s.IterDeltas {
		tPath, ok := t.Paths[ih]
		if !ok {
			continue
		}
		if td, ok := t.IterDeltas[ih]; !ok || !pathexpr.Equal(td, delta) {
			continue
		}
		axioms := r.Axioms
		if !r.opts.AssumeLoopInvariants {
			axioms = r.windowAxioms(0, 0, append(append([]string{}, s.LoopModFields...), t.LoopModFields...))
		}
		out = append(out, core.Query{
			Axioms: axioms,
			S: core.Access{
				Handle: ih, Path: s.Paths[ih], Field: s.Field,
				Type: s.Type, IsWrite: s.IsWrite,
			},
			T: core.Access{
				Handle: ih,
				Path:   pathexpr.Cat(pathexpr.Rep1(delta), tPath),
				Field:  t.Field,
				Type:   t.Type, IsWrite: t.IsWrite,
			},
			// s runs in iteration i, t in a later iteration j: only the
			// loop-invariant guard subsets keep one truth value across
			// both, so only they may conflict.
			SGuards: s.InvGuards,
			TGuards: t.InvGuards,
		})
	}
	return out
}
