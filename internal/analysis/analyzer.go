package analysis

import (
	"fmt"
	"sort"

	"repro/internal/automata"
	"repro/internal/axiom"
	"repro/internal/guard"
	"repro/internal/lang"
	"repro/internal/pathexpr"
	"repro/internal/telemetry"
)

// Analyze runs the memory-reference analysis on function fnName of prog.
func Analyze(prog *lang.Program, fnName string, opts Options) (*Result, error) {
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("analysis: function %q not found", fnName)
	}
	tel := opts.Telemetry
	sp := tel.Begin("analysis.analyze")
	ssp := tel.Begin("analysis.summarize")
	summaries := Summarize(prog)
	ssp.End(telemetry.Int("funcs", len(summaries)))
	a := &analyzer{
		prog:      prog,
		fn:        fn,
		opts:      opts,
		tel:       tel,
		varTypes:  make(map[string]string),
		counters:  make(map[string]int),
		summaries: summaries,
		res: &Result{
			Fn:   fn,
			APMs: make(map[string]*APM),
			opts: opts,
		},
		record:    true,
		ver:       guard.NewVersioner(),
		addrTaken: collectAddrTaken(fn.Body),
	}
	a.collectAxioms()

	st := newState()
	for _, p := range fn.Params {
		if p.Type.IsPointerToStruct() {
			a.varTypes[p.Name] = p.Type.Base
			st.set(a.freshHandle(p.Name), p.Name, pathexpr.Eps)
		}
	}
	a.walkBlock(st, fn.Body)

	tel.Counter("analysis.functions").Add(1)
	tel.Counter("analysis.accesses").Add(int64(len(a.res.Accesses)))
	tel.Counter("analysis.mods").Add(int64(len(a.res.Mods)))
	tel.Counter("analysis.loops_widened").Add(int64(a.loopID))
	sp.End(
		telemetry.String("fn", fnName),
		telemetry.Int("accesses", len(a.res.Accesses)),
		telemetry.Int("mods", len(a.res.Mods)),
		telemetry.Int("apms", len(a.res.APMs)),
		telemetry.Int("loops", a.loopID),
		telemetry.Int("axioms", a.res.Axioms.Len()))
	return a.res, nil
}

type loopCtx struct {
	id int
	// iterDeltas maps a synthetic iteration handle to the per-iteration
	// increment of the variable it anchors.
	iterDeltas map[string]pathexpr.Expr
	// modFields accumulates pointer fields structurally modified in the
	// loop body.
	modFields map[string]bool
	// assignedVars and writtenFields are the syntactic prescan of the loop
	// body: variables assigned and struct fields stored to anywhere inside
	// it (including through summarized calls).  A guard predicate reading
	// any of them may change truth value between iterations, so it is not
	// loop-invariant.  unknownCalls taints every field-reading guard.
	assignedVars  map[string]bool
	writtenFields map[string]bool
	unknownCalls  bool
}

// invariant reports whether a guard reference keeps one truth value across
// all iterations of this loop: nothing the condition reads is assigned or
// stored to in the loop body.
func (lc *loopCtx) invariant(r guard.Ref) bool {
	for _, v := range r.P.Vars() {
		if lc.assignedVars[v] {
			return false
		}
	}
	flds := r.P.Fields()
	if len(flds) > 0 && lc.unknownCalls {
		return false
	}
	for _, f := range flds {
		if lc.writtenFields[f] {
			return false
		}
	}
	return true
}

type analyzer struct {
	prog      *lang.Program
	fn        *lang.FuncDecl
	opts      Options
	tel       *telemetry.Set
	res       *Result
	varTypes  map[string]string
	counters  map[string]int
	summaries map[string]*Summary
	record    bool
	ordinal   int
	loopID    int
	loops     []*loopCtx
	// ver versions guard predicates for this walk; guards is the stack of
	// dominating branch references at the current program point; addrTaken
	// vars may be written through pointers, so they are never guarded.
	ver       *guard.Versioner
	guards    []guard.Ref
	addrTaken map[string]bool
}

// collectAddrTaken returns the variables whose address is taken anywhere in
// the block — writable behind the analysis's back, hence unguardable.
func collectAddrTaken(b *lang.Block) map[string]bool {
	taken := make(map[string]bool)
	lang.WalkStmts(b, func(st lang.Stmt) {
		walkStmtExprs(st, func(e lang.Expr) {
			if ad, ok := e.(*lang.AddrExpr); ok {
				taken[ad.Name] = true
			}
		})
	})
	return taken
}

// walkStmtExprs applies fn to every expression directly attached to st
// (conditions, operands — not statements of nested blocks, which WalkStmts
// visits separately).
func walkStmtExprs(st lang.Stmt, fn func(lang.Expr)) {
	switch v := st.(type) {
	case *lang.AssignStmt:
		lang.WalkExprs(v.LHS, fn)
		lang.WalkExprs(v.RHS, fn)
	case *lang.ExprStmt:
		lang.WalkExprs(v.X, fn)
	case *lang.IfStmt:
		lang.WalkExprs(v.Cond, fn)
	case *lang.WhileStmt:
		lang.WalkExprs(v.Cond, fn)
	case *lang.ReturnStmt:
		lang.WalkExprs(v.Value, fn)
	}
}

// branchRefs turns one edge's guardable atoms into interned references,
// snapshotting pointer-comparison facts from the current APM state.
func (a *analyzer) branchRefs(st *state, atoms []guard.Atom) []guard.Ref {
	var out []guard.Ref
	for _, at := range atoms {
		if a.guardTainted(at) {
			continue
		}
		var eq *guard.Fact
		if at.EqX != "" && a.isPointerVar(at.EqX) && a.isPointerVar(at.EqY) {
			xp, yp := st.pathsOf(at.EqX), st.pathsOf(at.EqY)
			if h, ok := commonHandle(xp, yp); ok {
				eq = &guard.Fact{X: at.EqX, Y: at.EqY, XPath: xp[h], YPath: yp[h], Handle: h}
			}
		}
		p := guard.Intern(at.Canon, a.ver.Version(at.Vars, at.Fields), at.Vars, at.Fields, eq)
		out = append(out, guard.Ref{P: p, Neg: at.Neg})
	}
	return out
}

func (a *analyzer) guardTainted(at guard.Atom) bool {
	for _, v := range at.Vars {
		if a.addrTaken[v] {
			return true
		}
	}
	return false
}

// CollectAxioms merges the axiom sets of every struct declared in the
// program, plus inferred type-disjointness axioms when inferTypes is set,
// naming the merged set after fnName.  This is exactly the axiom set a full
// Analyze of that function would report — exported separately because the
// cluster router needs only this (the set's fingerprint decides ring
// placement) and must not pay for the dataflow walk per routed request.
func CollectAxioms(prog *lang.Program, fnName string, inferTypes bool) *axiom.Set {
	merged := &axiom.Set{StructName: fnName}
	for _, s := range prog.Structs {
		if s.Axioms == nil {
			continue
		}
		for _, ax := range s.Axioms.Axioms {
			named := ax
			if len(prog.Structs) > 1 && named.Name != "" {
				named.Name = s.Name + "." + named.Name
			}
			merged.Add(named)
		}
	}
	if inferTypes {
		structs := make(map[string][]axiom.FieldDecl)
		for _, s := range prog.Structs {
			var fds []axiom.FieldDecl
			for _, f := range s.Fields {
				if f.Type.IsPointerToStruct() {
					fds = append(fds, axiom.FieldDecl{Name: f.Name, Target: f.Type.Base})
				}
			}
			structs[s.Name] = fds
		}
		inferred := axiom.InferTypeDisjointness(structs)
		for _, ax := range inferred.Axioms {
			ax.Name = "inferred-" + ax.Name
			merged.Add(ax)
		}
	}
	return merged
}

// collectAxioms records the merged axiom set on the analysis result.
func (a *analyzer) collectAxioms() {
	a.res.Axioms = CollectAxioms(a.prog, a.fn.Name, a.opts.InferTypeAxioms)
}

func (a *analyzer) freshHandle(v string) string {
	a.counters[v]++
	if a.counters[v] == 1 {
		return "_h" + v
	}
	return fmt.Sprintf("_h%s%d", v, a.counters[v])
}

func (a *analyzer) isPointerVar(v string) bool {
	_, ok := a.varTypes[v]
	return ok
}

// pointerField reports whether field f of *v is a pointer field, using v's
// declared struct type.
func (a *analyzer) pointerField(v, f string) bool {
	t, ok := a.varTypes[v]
	if !ok {
		return false
	}
	s := a.prog.Struct(t)
	if s == nil {
		return false
	}
	fd := s.Field(f)
	return fd != nil && fd.Type.IsPointerToStruct()
}

// fieldTargetType returns the struct type field f of *v points to ("" when
// not a pointer field).
func (a *analyzer) fieldTargetType(v, f string) string {
	t, ok := a.varTypes[v]
	if !ok {
		return ""
	}
	s := a.prog.Struct(t)
	if s == nil {
		return ""
	}
	fd := s.Field(f)
	if fd == nil || !fd.Type.IsPointerToStruct() {
		return ""
	}
	return fd.Type.Base
}

func (a *analyzer) walkBlock(st *state, b *lang.Block) *state {
	for _, s := range b.Stmts {
		st = a.walkStmt(st, s)
	}
	return st
}

func (a *analyzer) walkStmt(st *state, s lang.Stmt) *state {
	if lbl := s.Label(); lbl != "" && a.record {
		// The paper: the APM at a point holds paths traversed up to, but not
		// including, that point.
		a.res.APMs[lbl] = st.snapshot()
	}
	a.ordinal++

	switch v := s.(type) {
	case *lang.DeclStmt:
		for _, item := range v.Items {
			if item.Type.IsPointerToStruct() {
				a.varTypes[item.Name] = item.Type.Base
			}
		}
		return st

	case *lang.AssignStmt:
		return a.walkAssign(st, v)

	case *lang.ExprStmt:
		a.recordReads(st, v.X, v.Label(), v.StmtPos())
		a.applyCallsIn(st, v.X, v.Label(), v.StmtPos())
		return st

	case *lang.ReturnStmt:
		if v.Value != nil {
			a.recordReads(st, v.Value, v.Label(), v.StmtPos())
			a.applyCallsIn(st, v.Value, v.Label(), v.StmtPos())
		}
		return st

	case *lang.BlockStmt:
		return a.walkBlock(st, v.Body)

	case *lang.IfStmt:
		a.recordReads(st, v.Cond, v.Label(), v.StmtPos())
		thenAtoms, elseAtoms := guard.BranchAtoms(v.Cond)
		depth := len(a.guards)
		a.guards = append(a.guards, a.branchRefs(st, thenAtoms)...)
		thenSt := a.walkBlock(st.clone(), v.Then)
		a.guards = a.guards[:depth]
		if v.Else != nil {
			a.guards = append(a.guards, a.branchRefs(st, elseAtoms)...)
			elseSt := a.walkBlock(st.clone(), v.Else)
			a.guards = a.guards[:depth]
			return join(thenSt, elseSt)
		}
		return join(thenSt, st)

	case *lang.WhileStmt:
		return a.walkWhile(st, v)
	}
	return st
}

func (a *analyzer) walkAssign(st *state, s *lang.AssignStmt) *state {
	a.recordReads(st, s.RHS, s.Label(), s.StmtPos())
	a.applyCallsIn(st, s.RHS, s.Label(), s.StmtPos())

	switch lhs := s.LHS.(type) {
	case *lang.FieldAccess:
		// Store to lhs.Base->lhs.Field.  Record the write with the APM
		// before the statement (the store does not move any pointer VAR).
		a.recordAccess(st, s.Label(), lhs.Base, lhs.Field, true, s.StmtPos())
		a.ver.BumpField(lhs.Field)
		if a.pointerField(lhs.Base, lhs.Field) {
			a.structuralMod(st, lhs.Field, s.Label(), s.StmtPos())
		}
		return st

	case *lang.Ident:
		x := lhs.Name
		a.ver.BumpVar(x)
		switch rhs := s.RHS.(type) {
		case *lang.Ident:
			if !a.isPointerVar(x) {
				return st
			}
			if rhs.Name == x {
				return st
			}
			src := st.pathsOf(rhs.Name)
			st.dropVar(x)
			for h, p := range src {
				st.set(h, x, p)
			}
			st.set(a.freshHandle(x), x, pathexpr.Eps)
			return st

		case *lang.FieldAccess:
			if !a.isPointerVar(x) || !a.pointerField(rhs.Base, rhs.Field) {
				return st
			}
			f := pathexpr.F(rhs.Field)
			if rhs.Base == x {
				// Self-relative assignment: extend existing paths, create no
				// new handle (the induction-variable rule, §3.3).
				cur := st.pathsOf(x)
				if len(cur) == 0 {
					st.set(a.freshHandle(x), x, pathexpr.Eps)
					return st
				}
				for h, p := range cur {
					st.set(h, x, pathexpr.Cat(p, f))
				}
				return st
			}
			src := st.pathsOf(rhs.Base)
			st.dropVar(x)
			for h, p := range src {
				st.set(h, x, pathexpr.Cat(p, f))
			}
			st.set(a.freshHandle(x), x, pathexpr.Eps)
			return st

		case *lang.MallocExpr:
			if !a.isPointerVar(x) {
				return st
			}
			st.dropVar(x)
			st.set(a.freshHandle(x), x, pathexpr.Eps)
			return st

		case *lang.NullLit:
			st.dropVar(x)
			return st

		case *lang.NumLit:
			if a.isPointerVar(x) {
				st.dropVar(x)
			}
			return st

		case *lang.CallExpr:
			// Call effects were applied by applyCallsIn above; here only
			// the returned value binds.  For a summarized accessor the
			// return value is a known path from one of the arguments.
			if a.isPointerVar(x) {
				var derived map[string]pathexpr.Expr
				if sum := a.summaries[rhs.Name]; sum != nil && sum.RetKnown && sum.RetParam < len(rhs.Args) {
					if arg, ok := rhs.Args[sum.RetParam].(*lang.Ident); ok && a.isPointerVar(arg.Name) {
						derived = make(map[string]pathexpr.Expr)
						for h, p := range st.pathsOf(arg.Name) {
							derived[h] = pathexpr.Cat(p, sum.RetPath)
						}
					}
				}
				st.dropVar(x)
				for h, p := range derived {
					st.set(h, x, p)
				}
				st.set(a.freshHandle(x), x, pathexpr.Eps)
			}
			return st

		default:
			if a.isPointerVar(x) {
				st.dropVar(x)
			}
			return st
		}
	}
	return st
}

// walkWhile analyzes a loop: one silent pass to discover per-iteration
// increments, widening with Kleene stars, then a recording pass at the
// fixpoint with synthetic iteration handles planted for loop-carried
// queries.
func (a *analyzer) walkWhile(st *state, w *lang.WhileStmt) *state {
	a.recordReads(st, w.Cond, w.Label(), w.StmtPos())
	entry := st

	// Silent pass to observe one iteration's effect.
	saved := a.record
	a.record = false
	after1 := a.walkBlock(entry.clone(), w.Body)
	a.record = saved

	wid, deltas := widen(entry, after1)

	// Per-variable iteration increment: consistent across handles or none.
	varDelta := make(map[string]pathexpr.Expr)
	varOK := make(map[string]bool)
	for hv, d := range deltas {
		v := hv.v
		if prev, seen := varDelta[v]; seen {
			if !pathexpr.Equal(prev, d) {
				varOK[v] = false
			}
		} else {
			varDelta[v] = d
			varOK[v] = true
		}
	}

	a.loopID++
	lc := &loopCtx{
		id:         a.loopID,
		iterDeltas: make(map[string]pathexpr.Expr),
		modFields:  make(map[string]bool),
	}
	a.prescanLoopBody(lc, w.Body)
	fix := wid.clone()
	for v, d := range varDelta {
		if !varOK[v] {
			continue
		}
		ih := fmt.Sprintf("_it%d_%s", lc.id, v)
		lc.iterDeltas[ih] = d
		fix.set(ih, v, pathexpr.Eps)
	}
	if a.tel.TraceEnabled() {
		a.tel.Emit("analysis.widen",
			telemetry.Int("loop", lc.id),
			telemetry.String("label", w.Label()),
			telemetry.Int("widened_vars", len(deltas)),
			telemetry.Int("iter_handles", len(lc.iterDeltas)))
	}

	// Recording pass at the widened fixpoint.
	firstAccess := len(a.res.Accesses)
	a.loops = append(a.loops, lc)
	after2 := a.walkBlock(fix.clone(), w.Body)
	a.loops = a.loops[:len(a.loops)-1]

	// Accesses recorded early in the body must still see modifications that
	// occur later in the same body: any iteration's store precedes a later
	// iteration's access.  Back-patch the loop's final modification set.
	if len(lc.modFields) > 0 {
		var mods []string
		for f := range lc.modFields {
			mods = append(mods, f)
		}
		for i := firstAccess; i < len(a.res.Accesses); i++ {
			set := map[string]bool{}
			for _, f := range a.res.Accesses[i].LoopModFields {
				set[f] = true
			}
			for _, f := range mods {
				set[f] = true
			}
			merged := make([]string, 0, len(set))
			for f := range set {
				merged = append(merged, f)
			}
			sort.Strings(merged)
			a.res.Accesses[i].LoopModFields = merged
		}
	}

	// Post-loop state: the widened entry where the body's effect stayed
	// within the widened language; everything else is unknown after the
	// loop.  Iteration handles are per-iteration and do not survive.
	post := newState()
	post.modEpoch = maxInt(entry.modEpoch, after2.modEpoch)
	for h, row := range wid.cells {
		for v, p := range row {
			p2, ok := after2.cells[h][v]
			if !ok {
				continue
			}
			if pathexpr.Equal(p, p2) || a.includes(p2, p) {
				post.set(h, v, p)
			}
		}
	}
	return post
}

// prescanLoopBody fills the loop's guard-invariance sets: variables
// assigned and fields written anywhere in the body, including through
// summarized calls.  Conservative in the right direction — an
// over-approximation only shrinks InvGuards, never grows it.
func (a *analyzer) prescanLoopBody(lc *loopCtx, body *lang.Block) {
	lc.assignedVars = make(map[string]bool)
	lc.writtenFields = make(map[string]bool)
	noteCall := func(name string) {
		sum := a.summaries[name]
		if sum == nil || sum.CallsUnknown {
			lc.unknownCalls = true
		}
		if sum != nil {
			for _, f := range sum.WrittenFields {
				lc.writtenFields[f] = true
			}
		}
	}
	lang.WalkStmts(body, func(st lang.Stmt) {
		if as, ok := st.(*lang.AssignStmt); ok {
			switch lhs := as.LHS.(type) {
			case *lang.Ident:
				lc.assignedVars[lhs.Name] = true
			case *lang.FieldAccess:
				lc.writtenFields[lhs.Field] = true
			}
		}
		walkStmtExprs(st, func(e lang.Expr) {
			if call, ok := e.(*lang.CallExpr); ok {
				noteCall(call.Name)
			}
		})
	})
}

// includes decides language inclusion L(sub) ⊆ L(sup); any failure (e.g.
// state blowup) is treated as "not included", which only loses precision.
func (a *analyzer) includes(sub, sup pathexpr.Expr) bool {
	alpha := automata.AlphabetOf(sub, sup)
	ds, err := automata.Compile(sub, alpha)
	if err != nil {
		return false
	}
	dp, err := automata.Compile(sup, alpha)
	if err != nil {
		return false
	}
	return ds.Includes(dp)
}

type hvKey struct{ h, v string }

// widen compares the loop-entry state with the state after one iteration
// and generalizes growing paths: p → p·δ becomes p·δ*.  It returns the
// widened state and the observed increments.
func widen(entry, after *state) (*state, map[hvKey]pathexpr.Expr) {
	wid := newState()
	wid.modEpoch = maxInt(entry.modEpoch, after.modEpoch)
	deltas := make(map[hvKey]pathexpr.Expr)
	for h, row := range entry.cells {
		arow, ok := after.cells[h]
		if !ok {
			continue
		}
		for v, pe := range row {
			p1, ok := arow[v]
			if !ok {
				continue
			}
			if pathexpr.Equal(pe, p1) {
				wid.set(h, v, pe)
				continue
			}
			if d, ok := componentSuffix(pe, p1); ok {
				wid.set(h, v, pathexpr.Cat(pe, pathexpr.Rep(d)))
				deltas[hvKey{h, v}] = d
				continue
			}
			// Entry already closed (e.g. re-widening): keep if stable.
			// Anything else is dropped as unknown.
		}
	}
	return wid, deltas
}

// componentSuffix reports whether p1 = pe · δ at component granularity and
// returns δ.
func componentSuffix(pe, p1 pathexpr.Expr) (pathexpr.Expr, bool) {
	ce, c1 := pathexpr.Components(pe), pathexpr.Components(p1)
	if len(c1) <= len(ce) {
		return nil, false
	}
	for i := range ce {
		if !pathexpr.Equal(ce[i], c1[i]) {
			return nil, false
		}
	}
	return pathexpr.FromComponents(c1[len(ce):]), true
}

// structuralMod handles a store to a pointer field (§3.4): it is recorded as
// a modification site, poisons the enclosing loops, and invalidates every
// access path that traverses the modified field.
func (a *analyzer) structuralMod(st *state, field, label string, pos lang.Pos) {
	if a.record {
		a.res.Mods = append(a.res.Mods, ModSite{Epoch: st.modEpoch, Field: field, Label: label, Pos: pos})
	}
	st.modEpoch++
	for _, lc := range a.loops {
		lc.modFields[field] = true
	}
	for h, row := range st.cells {
		for v, p := range row {
			if mentionsField(p, field) {
				delete(row, v)
			}
		}
		if len(row) == 0 {
			delete(st.cells, h)
		}
	}
}

// invalidateAll models an opaque call that may restructure everything:
// every non-ε path is dropped and all fields count as modified.
func (a *analyzer) invalidateAll(st *state, label string, pos lang.Pos) {
	if a.record {
		a.res.Mods = append(a.res.Mods, ModSite{Epoch: st.modEpoch, Field: "*", Label: label, Pos: pos})
	}
	st.modEpoch++
	for _, lc := range a.loops {
		lc.modFields["*"] = true
	}
	for h, row := range st.cells {
		for v, p := range row {
			if _, isEps := p.(pathexpr.Epsilon); !isEps {
				delete(row, v)
			}
		}
		if len(row) == 0 {
			delete(st.cells, h)
		}
	}
}

func mentionsField(p pathexpr.Expr, field string) bool {
	found := false
	pathexpr.Walk(p, func(e pathexpr.Expr) {
		if f, ok := e.(pathexpr.Field); ok && f.Name == field {
			found = true
		}
	})
	return found
}

// applyCallsIn applies the structural effects of every call in e, using
// interprocedural summaries for functions the program defines: their
// (transitively) modified pointer fields become modification sites here.
// Calls to unknown functions follow the CallsModifyStructure option.
func (a *analyzer) applyCallsIn(st *state, e lang.Expr, label string, pos lang.Pos) {
	lang.WalkExprs(e, func(x lang.Expr) {
		call, ok := x.(*lang.CallExpr)
		if !ok {
			return
		}
		sum := a.summaries[call.Name]
		if sum == nil {
			// Unknown callee: the lenient default assumes it maintains the
			// axioms (Figure 1's insert); strict mode wipes the world.
			// Guard versions are invalidated either way — an unknown callee
			// may overwrite any field's VALUE even while preserving the
			// structural axioms.
			a.ver.BumpAllFields()
			if a.opts.CallsModifyStructure {
				a.invalidateAll(st, label, pos)
			}
			return
		}
		for _, f := range sum.WrittenFields {
			a.ver.BumpField(f)
		}
		for _, f := range sum.ModifiedFields {
			a.structuralMod(st, f, label, pos)
		}
		if sum.CallsUnknown {
			a.ver.BumpAllFields()
			if a.opts.CallsModifyStructure {
				a.invalidateAll(st, label, pos)
			}
		}
	})
}

// recordReads records a read access for every var->field occurrence in e.
func (a *analyzer) recordReads(st *state, e lang.Expr, label string, _ lang.Pos) {
	lang.WalkExprs(e, func(x lang.Expr) {
		if fa, ok := x.(*lang.FieldAccess); ok {
			a.recordAccess(st, label, fa.Base, fa.Field, false, fa.ExprPos())
		}
	})
}

func (a *analyzer) recordAccess(st *state, label, v, field string, isWrite bool, pos lang.Pos) {
	if !a.record {
		return
	}
	acc := Access{
		Label:    label,
		Stmt:     a.ordinal,
		Var:      v,
		Field:    field,
		Type:     a.varTypes[v],
		IsWrite:  isWrite,
		Paths:    st.pathsOf(v),
		ModEpoch: st.modEpoch,
		Pos:      pos,
	}
	acc.Guards = guard.Canon(a.guards)
	acc.InvGuards = acc.Guards
	if len(a.loops) > 0 {
		acc.IterDeltas = make(map[string]pathexpr.Expr)
		modSet := map[string]bool{}
		for _, lc := range a.loops {
			for ih, d := range lc.iterDeltas {
				if _, ok := acc.Paths[ih]; ok {
					acc.IterDeltas[ih] = d
				}
			}
			for f := range lc.modFields {
				modSet[f] = true
			}
			acc.InvGuards = acc.InvGuards.Filter(lc.invariant)
		}
		for f := range modSet {
			acc.LoopModFields = append(acc.LoopModFields, f)
		}
		sort.Strings(acc.LoopModFields)
	}
	a.res.Accesses = append(a.res.Accesses, acc)
}
