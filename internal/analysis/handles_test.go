package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/prover"
)

// TestUnknownHandlesFallback: two pointers with no common handle (separate
// unknown parameters) still produce a query under the unknown-relation
// form; distinct data fields answer No structurally, and same fields over
// provably-position-distinct paths answer No via the two-proof rule.
func TestUnknownHandlesFallback(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	int g;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void h(struct Node *a, struct Node *b) {
	struct Node *p;
	struct Node *q;
	p = a->link;
	q = b->link;
S:	p->f = 1;
T:	q->g = 2;
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "h", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("queries = %d, want 1", len(qs))
	}
	if qs[0].Relation != core.UnknownHandles {
		t.Fatalf("relation = %v, want UnknownHandles", qs[0].Relation)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	// Distinct fields f and g: structurally independent regardless of
	// aliasing.
	if out := tester.DepTest(qs[0]); out.Result != core.No {
		t.Errorf("distinct fields across unknown handles = %v, want No", out.Result)
	}
}

// TestUnknownHandlesSameFieldIsMaybe: same field, unknown anchors, aliasing
// possible — must stay Maybe.
func TestUnknownHandlesSameFieldIsMaybe(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void h(struct Node *a, struct Node *b) {
S:	a->f = 1;
T:	b->f = 2;
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "h", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	if out := tester.DepTest(qs[0]); out.Result != core.Maybe {
		t.Errorf("a->f vs b->f with unknown relation = %v, want Maybe (a may equal b)", out.Result)
	}
}

// TestHandleNaming: repeated reassignment numbers handles _hp, _hp2, _hp3.
func TestHandleNaming(t *testing.T) {
	src := `
struct Node { struct Node *n; int d; };
void f(struct Node *a) {
	struct Node *p;
	p = a;
	p = a->n;
X:	p->d = 1;
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	apm := res.APMs["X"]
	if _, ok := apm.Cells["_hp2"]; !ok {
		t.Errorf("expected second handle _hp2:\n%s", apm)
	}
	if _, ok := apm.Cells["_hp"]; ok {
		t.Errorf("first handle should be dead:\n%s", apm)
	}
}

// TestSequentialLoops: two separate loops over the same list — the second
// loop re-anchors and analyzes independently.
func TestSequentialLoops(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void g(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
A:		q->f = 1;
		q = q->link;
	}
	q = head;
	while (q != NULL) {
B:		q->f = 2;
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	for _, label := range []string{"A", "B"} {
		qs, err := res.LoopCarriedQueries(label)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for _, q := range qs {
			if out := tester.DepTest(q); out.Result != core.No {
				t.Errorf("%s loop-carried = %v, want No", label, out.Result)
			}
		}
	}
	// Both accesses anchor at head with widened paths; the cross-loop
	// same-element pairs correctly stay undecided (iteration counts may
	// coincide).
	qs, err := res.QueriesBetween("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, q := range qs {
		if strings.Contains(q.S.Handle, "head") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a head-anchored query, got %+v", qs)
	}
}

// TestWhileInsideIf: loop widening under a conditional.
func TestWhileInsideIf(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void g(struct Node *head, int c) {
	struct Node *q;
	q = head;
	if (c > 0) {
		while (q != NULL) {
U:			q->f = 1;
			q = q->link;
		}
	}
X:	head->f = 2;
}
`
	prog := lang.MustParse(src)
	res, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := res.LoopCarriedQueries("U")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(res.Axioms, prover.Options{})
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.No {
			t.Errorf("conditional loop-carried = %v, want No", out.Result)
		}
	}
	// After the if, head's own access at X still has its anchor.
	accs := res.AccessesAt("X")
	if len(accs) != 1 || len(accs[0].Paths) == 0 {
		t.Fatalf("accesses at X: %+v", accs)
	}
}
