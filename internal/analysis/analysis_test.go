package analysis

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/pathexpr"
	"repro/internal/prover"
)

const section33Src = `
struct LLBinaryTree {
	struct LLBinaryTree *L;
	struct LLBinaryTree *R;
	struct LLBinaryTree *N;
	int d;
	axioms {
		A1: forall p, p.L <> p.R;
		A2: forall p <> q, p.(L|R) <> q.(L|R);
		A3: forall p <> q, p.N <> q.N;
		A4: forall p, p.(L|R|N)+ <> p.eps;
	}
};

int subr(struct LLBinaryTree *root) {
	struct LLBinaryTree *p;
	struct LLBinaryTree *q;
	root = root->L;
	p = root->L;
	p = p->N;
S:	p->d = 100;
	p = root;
I:	q = root->R;
	q = q->N;
T:	return q->d;
}
`

func analyzeSection33(t *testing.T, opts Options) *Result {
	t.Helper()
	prog := lang.MustParse(section33Src)
	r, err := Analyze(prog, "subr", opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSection33_APMAtS reproduces the paper's first APM table: at S,
// _hroot anchors root via L and p via LLN, while _hp anchors p via N.
func TestSection33_APMAtS(t *testing.T) {
	r := analyzeSection33(t, Options{})
	apm := r.APMs["S"]
	if apm == nil {
		t.Fatal("no APM at S")
	}
	assertCell(t, apm, "_hroot", "root", "L")
	assertCell(t, apm, "_hroot", "p", "LLN")
	assertCell(t, apm, "_hp", "p", "N")
	if _, ok := apm.Lookup("_hp", "root"); ok {
		t.Error("_hp should not anchor root")
	}
}

// TestSection33_APMAtI reproduces the second table: after p = root the
// handle _hp is destroyed (it anchors nothing) and _hp2 appears with ε.
func TestSection33_APMAtI(t *testing.T) {
	r := analyzeSection33(t, Options{})
	apm := r.APMs["I"]
	if apm == nil {
		t.Fatal("no APM at I")
	}
	assertCell(t, apm, "_hroot", "p", "L")
	assertCell(t, apm, "_hp2", "p", "ε")
	if _, ok := apm.Cells["_hp"]; ok {
		t.Error("_hp should have been destroyed once p was reassigned")
	}
	// The paper's printed table blanks root's cell; the value L remains
	// correct (root has not moved since) and we keep it.
	assertCell(t, apm, "_hroot", "root", "L")
}

// TestSection33_APMAtT reproduces the third table: q reached via LRN from
// _hroot and via N from _hq.
func TestSection33_APMAtT(t *testing.T) {
	r := analyzeSection33(t, Options{})
	apm := r.APMs["T"]
	if apm == nil {
		t.Fatal("no APM at T")
	}
	assertCell(t, apm, "_hroot", "q", "LRN")
	assertCell(t, apm, "_hq", "q", "N")
	assertCell(t, apm, "_hp2", "p", "ε")
}

func assertCell(t *testing.T, apm *APM, h, v, want string) {
	t.Helper()
	p, ok := apm.Lookup(h, v)
	if !ok {
		t.Errorf("APM[%s][%s] missing, want %s\n%s", h, v, want, apm)
		return
	}
	if got := pathexpr.Compact(p); got != want {
		t.Errorf("APM[%s][%s] = %s, want %s", h, v, got, want)
	}
}

// TestSection33_DependenceDisproved is the paper's end-to-end result: the
// analysis finds the common handle _hroot, maps p to LLN and q to LRN, and
// APT proves T independent of S.
func TestSection33_DependenceDisproved(t *testing.T) {
	r := analyzeSection33(t, Options{})
	qs, err := r.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 1 {
		t.Fatalf("got %d queries, want 1 (write at S vs read at T)", len(qs))
	}
	q := qs[0]
	if q.S.Handle != "_hroot" || q.T.Handle != "_hroot" {
		t.Errorf("common handle = %s/%s, want _hroot", q.S.Handle, q.T.Handle)
	}
	if got := pathexpr.Compact(q.S.Path); got != "LLN" {
		t.Errorf("S path = %s, want LLN", got)
	}
	if got := pathexpr.Compact(q.T.Path); got != "LRN" {
		t.Errorf("T path = %s, want LRN", got)
	}
	tester := core.NewTester(q.Axioms, prover.Options{})
	out := tester.DepTest(q)
	if out.Result != core.No {
		t.Fatalf("deptest = %v (%s), want No", out.Result, out.Reason)
	}
}

// TestFigure1_LoopCarried analyzes the list-update loop and disproves the
// loop-carried output dependence on U.
func TestFigure1_LoopCarried(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};

void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = fun();
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "update", Options{})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.AccessesAt("U")
	if len(accs) != 1 || !accs[0].IsWrite {
		t.Fatalf("accesses at U = %+v", accs)
	}
	if len(accs[0].IterDeltas) != 1 {
		t.Fatalf("iteration deltas = %v, want one", accs[0].IterDeltas)
	}
	qs, err := r.LoopCarriedQueries("U")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(r.Axioms, prover.Options{})
	for _, q := range qs {
		out := tester.DepTest(q)
		if out.Result != core.No {
			t.Errorf("loop-carried query %v vs %v = %v, want No", q.S, q.T, out.Result)
		}
	}
	// The widened post-loop path of q survives the loop.
	uPaths := accs[0].Paths
	if got := uPaths["_hhead"].String(); got != "link*" {
		t.Errorf("q path from _hhead inside loop = %s, want link*", got)
	}
}

// TestFigure1_MallocBreaksInduction: if q is freshly allocated each
// iteration there is no induction variable and no loop-carried query.
func TestFigure1_MallocBreaksInduction(t *testing.T) {
	src := `
struct Node { struct Node *link; int f; };
void build(struct Node *head) {
	struct Node *q;
	while (head != NULL) {
		q = malloc(struct Node);
U:		q->f = fun();
	}
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "build", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoopCarriedQueries("U"); err == nil {
		t.Error("malloc'd q has no induction structure; expected error")
	}
}

// TestIfJoin: paths merge by alternation at control-flow joins, and
// branch-local handles are dropped.
func TestIfJoin(t *testing.T) {
	src := `
struct Tree {
	struct Tree *L;
	struct Tree *R;
	int d;
	axioms {
		forall p, p.L <> p.R;
		forall p <> q, p.(L|R) <> q.(L|R);
		forall p, p.(L|R)+ <> p.eps;
	}
};
void f(struct Tree *a, int c) {
	struct Tree *p;
	if (c > 0) {
		p = a->L;
	} else {
		p = a->R;
	}
X:	p->d = 1;
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	apm := r.APMs["X"]
	p, ok := apm.Lookup("_ha", "p")
	if !ok {
		t.Fatalf("no merged path for p:\n%s", apm)
	}
	if got := p.String(); got != "L|R" {
		t.Errorf("merged path = %s, want L|R", got)
	}
	// APT can still prove p->d independent of the other child's subtree.
	accs := r.AccessesAt("X")
	if len(accs) != 1 {
		t.Fatalf("accesses at X: %+v", accs)
	}
}

// TestStructuralModificationWindow: a store to a pointer field invalidates
// the axioms constraining that field for queries spanning the store (§3.4).
func TestStructuralModificationWindow(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void g(struct Node *a, struct Node *m) {
	struct Node *p;
	struct Node *q;
	p = a->link;
S:	p->f = 1;
	a->link = m;
	q = a->link;
T:	q->f = 2;
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Mods) != 1 || r.Mods[0].Field != "link" {
		t.Fatalf("mods = %+v, want one link modification", r.Mods)
	}
	qs, err := r.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Axioms.Len() != 0 {
			t.Errorf("window axioms = %d, want 0 (all constrain link)", q.Axioms.Len())
		}
	}
	// A query that does not span the modification keeps all axioms.
	same, err := r.QueriesBetween("S", "S")
	if err != nil {
		t.Fatal(err)
	}
	if same[0].Axioms.Len() != r.Axioms.Len() {
		t.Errorf("non-spanning window dropped axioms: %d vs %d", same[0].Axioms.Len(), r.Axioms.Len())
	}
}

// TestModificationInvalidatesPaths: after a->link is stored, paths that
// traverse link are no longer trusted.
func TestModificationInvalidatesPaths(t *testing.T) {
	src := `
struct Node { struct Node *link; int f; };
void g(struct Node *a, struct Node *m) {
	struct Node *p;
	p = a->link;
	a->link = m;
X:	p->f = 1;
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	accs := r.AccessesAt("X")
	if len(accs) != 1 {
		t.Fatalf("accesses: %+v", accs)
	}
	// p's path a.link was invalidated; only its own ε anchor remains.
	for h, p := range accs[0].Paths {
		if h == "_hp" {
			continue
		}
		t.Errorf("stale path %s.%s survived the modification", h, p)
	}
}

// TestLoopCarriedWithModification: structural modification inside the loop
// strips the axioms for loop-carried queries unless the analysis is told to
// assume invariants are maintained — the partial vs full distinction behind
// Figure 7.
func TestLoopCarriedWithModification(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void h(struct Node *head, struct Node *extra) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = fun();
		q->link = extra;
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)

	partial, err := Analyze(prog, "h", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := partial.LoopCarriedQueries("U")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(partial.Axioms, prover.Options{})
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.Maybe {
			t.Errorf("partial analysis = %v, want Maybe (axioms invalidated by the in-loop store)", out.Result)
		}
	}

	full, err := Analyze(prog, "h", Options{AssumeLoopInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err = full.LoopCarriedQueries("U")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.No {
			t.Errorf("full analysis = %v, want No (invariants assumed maintained)", out.Result)
		}
	}
}

// TestLoopCarriedBetween: two different statements in one loop, compared
// across iterations.
func TestLoopCarriedBetween(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	int g;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};
void w(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
A:		q->f = 1;
B:		q->f = q->g;
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)
	r, err := Analyze(prog, "w", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := r.LoopCarriedBetween("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	tester := core.NewTester(r.Axioms, prover.Options{})
	for _, q := range qs {
		if out := tester.DepTest(q); out.Result != core.No {
			t.Errorf("cross-iteration A/B = %v, want No", out.Result)
		}
	}
	// Same-iteration A and B definitely collide on field f.
	same, err := r.QueriesBetween("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	foundYes := false
	for _, q := range same {
		if q.S.Field == "f" && q.T.Field == "f" {
			if out := tester.DepTest(q); out.Result == core.Yes {
				foundYes = true
			}
		}
	}
	if !foundYes {
		t.Error("same-iteration write/write on q->f should be a definite dependence")
	}
}

// TestOpaqueCallsOption: with CallsModifyStructure, a call wipes the world.
func TestOpaqueCallsOption(t *testing.T) {
	src := `
struct Node {
	struct Node *link;
	int f;
	axioms { forall p <> q, p.link <> q.link; forall p, p.link+ <> p.eps; }
};
void g(struct Node *a) {
	struct Node *p;
	p = a->link;
S:	p->f = 1;
	shuffle(a);
T:	p->f = 2;
}
`
	prog := lang.MustParse(src)
	strict, err := Analyze(prog, "g", Options{CallsModifyStructure: true})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := strict.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Axioms.Len() != 0 {
		t.Errorf("axioms across opaque call = %d, want 0", qs[0].Axioms.Len())
	}

	lenient, err := Analyze(prog, "g", Options{})
	if err != nil {
		t.Fatal(err)
	}
	qs, err = lenient.QueriesBetween("S", "T")
	if err != nil {
		t.Fatal(err)
	}
	if qs[0].Axioms.Len() == 0 {
		t.Error("lenient mode should keep axioms across calls")
	}
}

// TestInferTypeAxioms: fields of different target types yield inferred
// disjointness axioms.
func TestInferTypeAxioms(t *testing.T) {
	src := `
struct Header { struct Header *nrowH; struct Elem *relem; };
struct Elem { struct Elem *ncolE; double val; };
void f(struct Header *h) {
	struct Elem *e;
	e = h->relem;
X:	e->val = 1.0;
}
`
	prog := lang.MustParse(src)
	with, err := Analyze(prog, "f", Options{InferTypeAxioms: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Analyze(prog, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if with.Axioms.Len() <= without.Axioms.Len() {
		t.Errorf("inferred axioms missing: %d vs %d", with.Axioms.Len(), without.Axioms.Len())
	}
}

func TestAPMString(t *testing.T) {
	r := analyzeSection33(t, Options{})
	out := r.APMs["S"].String()
	for _, want := range []string{"_hroot", "_hp", "LLN"} {
		if !strings.Contains(out, want) {
			t.Errorf("APM table missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	prog := lang.MustParse(`struct T { struct T *n; }; void f(struct T *x) { x = x->n; }`)
	if _, err := Analyze(prog, "missing", Options{}); err == nil {
		t.Error("expected error for missing function")
	}
	r, err := Analyze(prog, "f", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.QueriesBetween("A", "B"); err == nil {
		t.Error("expected error for unknown labels")
	}
	if _, err := r.LoopCarriedQueries("A"); err == nil {
		t.Error("expected error for unknown label")
	}
}
