package interp

import (
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/lang"
	"repro/internal/pathexpr"
)

const section33Src = `
struct LLBinaryTree {
	struct LLBinaryTree *L;
	struct LLBinaryTree *R;
	struct LLBinaryTree *N;
	int d;
};

int subr(struct LLBinaryTree *root) {
	struct LLBinaryTree *p;
	struct LLBinaryTree *q;
	root = root->L;
	p = root->L;
	p = p->N;
S:	p->d = 100;
	p = root;
I:	q = root->R;
	q = q->N;
T:	return q->d;
}
`

// TestSection33Concrete runs the paper's subroutine on Figure 3's concrete
// tree: S writes leaf 4 (_hroot.LLN), T reads leaf 5 (_hroot.LRN) —
// distinct vertices, exactly as APT proved.
func TestSection33Concrete(t *testing.T) {
	prog := lang.MustParse(section33Src)
	g, root := heap.BuildLeafLinkedTree(2)
	in := New(prog, g, Options{})
	in.SetData(5, "d", 55)

	ret, trace, err := in.Run("subr", Ptr(root))
	if err != nil {
		t.Fatal(err)
	}
	if ret.Num != 55 {
		t.Errorf("return = %v, want 55 (leaf 5's d)", ret.Num)
	}

	sEvents := trace.At("S")
	if len(sEvents) != 1 || !sEvents[0].IsWrite || sEvents[0].Vertex != 4 {
		t.Fatalf("S events = %+v, want one write at vertex 4", sEvents)
	}
	tEvents := trace.At("T")
	if len(tEvents) != 1 || tEvents[0].IsWrite || tEvents[0].Vertex != 5 {
		t.Fatalf("T events = %+v, want one read at vertex 5", tEvents)
	}
	if in.Data(4, "d") != 100 {
		t.Errorf("leaf 4 d = %v, want 100", in.Data(4, "d"))
	}

	// The analysis predicted S touches _hroot.LLN and T touches
	// _hroot.LRN; on this concrete heap those evaluate to exactly the
	// vertices the run touched.
	if got := g.Eval(root, pathexpr.MustParse("L.L.N")); len(got) != 1 || !got[4] {
		t.Errorf("Eval(LLN) = %v", got)
	}
	if got := g.Eval(root, pathexpr.MustParse("L.R.N")); len(got) != 1 || !got[5] {
		t.Errorf("Eval(LRN) = %v", got)
	}
}

// TestLoopTraceWithinPrediction: the list-update loop touches exactly the
// vertices inside the analysis's widened prediction link*.
func TestLoopTraceWithinPrediction(t *testing.T) {
	src := `
struct Node { struct Node *link; int f; };
void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = 1;
		q = q->link;
	}
}
`
	prog := lang.MustParse(src)
	g, head := heap.BuildList(6, "link")
	in := New(prog, g, Options{})
	if _, trace, err := in.Run("update", Ptr(head)); err != nil {
		t.Fatal(err)
	} else {
		events := trace.At("U")
		if len(events) != 6 {
			t.Fatalf("U executed %d times, want 6", len(events))
		}
		predicted := g.Eval(head, pathexpr.MustParse("link*"))
		for _, e := range events {
			if !predicted[e.Vertex] {
				t.Errorf("touched vertex %d outside predicted link*", e.Vertex)
			}
		}
		// And each iteration touches a distinct vertex — the concrete
		// witness of the loop-carried independence APT proved.
		seen := map[heap.Vertex]bool{}
		for _, e := range events {
			if seen[e.Vertex] {
				t.Errorf("vertex %d touched twice across iterations", e.Vertex)
			}
			seen[e.Vertex] = true
		}
	}
}

// TestStructuralMutationAndAxioms: a program that inserts at the head of a
// list preserves the list axioms; one that closes a cycle violates
// acyclicity — both verified by model-checking the heap after the run.
func TestStructuralMutationAndAxioms(t *testing.T) {
	src := `
struct Node { struct Node *link; int f; };
void insertFront(struct Node *head) {
	struct Node *n;
	n = malloc(struct Node);
	n->link = head;
}
void closeCycle(struct Node *head) {
	struct Node *last;
	last = head;
	while (last->link != NULL) {
		last = last->link;
	}
	last->link = head;
}
`
	prog := lang.MustParse(src)
	axioms := axiom.SinglyLinkedList("link")

	g1, head1 := heap.BuildList(4, "link")
	in1 := New(prog, g1, Options{})
	if _, _, err := in1.Run("insertFront", Ptr(head1)); err != nil {
		t.Fatal(err)
	}
	if err := g1.CheckSet(axioms); err != nil {
		t.Errorf("insertFront should preserve the list axioms: %v", err)
	}

	g2, head2 := heap.BuildList(4, "link")
	in2 := New(prog, g2, Options{})
	if _, _, err := in2.Run("closeCycle", Ptr(head2)); err != nil {
		t.Fatal(err)
	}
	if err := g2.CheckSet(axioms); err == nil {
		t.Error("closeCycle must violate acyclicity")
	}
}

// TestWhileCondChainedDeref: the loop condition dereferences inside a
// comparison.
func TestArithmeticAndControl(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
int sum(struct T *x, int k) {
	int acc;
	acc = 0;
	while (k > 0 && x != NULL) {
		acc = acc + x->v * 2;
		if (acc > 100) {
			acc = 100;
		} else {
			acc = acc + 1;
		}
		x = x->n;
		k = k - 1;
	}
	return acc;
}
`
	prog := lang.MustParse(src)
	g, head := heap.BuildList(3, "n")
	in := New(prog, g, Options{})
	in.SetData(0, "v", 10)
	in.SetData(1, "v", 20)
	in.SetData(2, "v", 30)
	ret, _, err := in.Run("sum", Ptr(head), Num(2))
	if err != nil {
		t.Fatal(err)
	}
	// acc = 10*2 +1 = 21; then 21 + 40 = 61 + 1 = 62.
	if ret.Num != 62 {
		t.Errorf("sum = %v, want 62", ret.Num)
	}
}

func TestRuntimeErrors(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
void nullDeref(struct T *x) { x = x->n; x = x->n; }
void infinite(struct T *x) { while (1 > 0) { x->v = 1; } }
int divZero(struct T *x) { return x->v / 0; }
`
	prog := lang.MustParse(src)

	g, v := heap.BuildList(1, "n")
	in := New(prog, g, Options{})
	if _, _, err := in.Run("nullDeref", Ptr(v)); err == nil {
		t.Error("expected null dereference error")
	}

	g2, v2 := heap.BuildList(1, "n")
	in2 := New(prog, g2, Options{MaxSteps: 500})
	if _, _, err := in2.Run("infinite", Ptr(v2)); err == nil {
		t.Error("expected step budget error")
	}

	g3, v3 := heap.BuildList(1, "n")
	in3 := New(prog, g3, Options{})
	if _, _, err := in3.Run("divZero", Ptr(v3)); err == nil {
		t.Error("expected division by zero error")
	}
}

func TestCallHook(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
void f(struct T *x) {
U:	x->v = fun();
}
`
	prog := lang.MustParse(src)
	g, v := heap.BuildList(1, "n")
	called := false
	in := New(prog, g, Options{
		Call: func(name string, args []Value) (Value, error) {
			called = name == "fun"
			return Num(7), nil
		},
	})
	if _, _, err := in.Run("f", Ptr(v)); err != nil {
		t.Fatal(err)
	}
	if !called || in.Data(v, "v") != 7 {
		t.Errorf("call hook not used: called=%v v=%v", called, in.Data(v, "v"))
	}
}

func TestMallocGrowsHeap(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
void grow(struct T *x) {
	struct T *a;
	a = malloc(struct T);
	x->n = a;
	a->v = 3;
}
`
	prog := lang.MustParse(src)
	g, v := heap.BuildList(1, "n")
	before := g.NumVertices()
	in := New(prog, g, Options{})
	if _, _, err := in.Run("grow", Ptr(v)); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != before+1 {
		t.Fatalf("heap grew %d -> %d, want +1", before, g.NumVertices())
	}
	w, ok := g.Edge(v, "n")
	if !ok {
		t.Fatal("edge not set")
	}
	if in.Data(w, "v") != 3 {
		t.Errorf("new vertex data = %v", in.Data(w, "v"))
	}
}

func TestRunErrors(t *testing.T) {
	prog := lang.MustParse(`struct T { int v; }; void f(struct T *x) { x->v = 1; }`)
	g := heap.New(1)
	in := New(prog, g, Options{})
	if _, _, err := in.Run("missing"); err == nil {
		t.Error("expected missing-function error")
	}
	if _, _, err := in.Run("f"); err == nil {
		t.Error("expected arity error")
	}
}
