package interp

import (
	"fmt"
	"math/rand"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/lang"
)

// Instance supplies one concrete input for a maintenance check: a heap plus
// the argument values to call the function with.
type Instance struct {
	Graph *heap.Graph
	Args  []Value
}

// Generator builds random instances.
type Generator func(rng *rand.Rand) Instance

// MaintainsAxioms checks §3.2's "perhaps automatically verified" promise
// dynamically: it runs fnName on `trials` generated instances whose initial
// heaps satisfy the axiom set, and verifies the axioms still hold on every
// resulting heap.  The first violation (or runtime error) is returned.
//
// A nil result is evidence — not proof — that the function maintains the
// structure's invariants; it is exactly the §3.4 property the "full"
// analysis of §5 assumes about the factorization's fill-in phase.
func MaintainsAxioms(prog *lang.Program, fnName string, set *axiom.Set, gen Generator, trials int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		inst := gen(rng)
		if err := inst.Graph.CheckSet(set); err != nil {
			return fmt.Errorf("interp: trial %d: generated instance violates the axioms before the run: %w", trial, err)
		}
		in := New(prog, inst.Graph, Options{})
		if _, _, err := in.Run(fnName, inst.Args...); err != nil {
			return fmt.Errorf("interp: trial %d: %s failed: %w", trial, fnName, err)
		}
		if err := inst.Graph.CheckSet(set); err != nil {
			return fmt.Errorf("interp: trial %d: %s broke the axioms: %w", trial, fnName, err)
		}
	}
	return nil
}
