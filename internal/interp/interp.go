// Package interp executes mini-C programs concretely over heap graphs.  It
// is the ground-truth execution substrate: a program runs against a real
// structure (package heap), every labeled memory access is recorded with
// the concrete vertex it touched, and the resulting trace is compared
// against what the static analysis predicted — the analysis is sound iff
// every touched vertex lies in the evaluation of some predicted access
// path.  The interpreter also drives axiom-maintenance checks: run a
// mutating program, then model-check the declared axioms on the resulting
// heap (§3.4's concern, made executable).
package interp

import (
	"fmt"
	"strconv"

	"repro/internal/heap"
	"repro/internal/lang"
)

// Value is a runtime value: a pointer (possibly null) or a number.
type Value struct {
	IsPtr  bool
	Null   bool
	Vertex heap.Vertex
	Num    float64
}

// Ptr returns a pointer value.
func Ptr(v heap.Vertex) Value { return Value{IsPtr: true, Vertex: v} }

// NullPtr returns the null pointer.
func NullPtr() Value { return Value{IsPtr: true, Null: true} }

// Num returns a numeric value.
func Num(x float64) Value { return Value{Num: x} }

func (v Value) truthy() bool {
	if v.IsPtr {
		return !v.Null
	}
	return v.Num != 0
}

// Event is one concrete memory access performed at a labeled statement.
type Event struct {
	Label   string
	Var     string
	Field   string
	Vertex  heap.Vertex
	IsWrite bool
}

// Trace records a run.
type Trace struct {
	Events []Event
	// Steps is the number of statements executed.
	Steps int
}

// At returns the events recorded at a label.
func (t *Trace) At(label string) []Event {
	var out []Event
	for _, e := range t.Events {
		if e.Label == label {
			out = append(out, e)
		}
	}
	return out
}

// Options configures a run.
type Options struct {
	// MaxSteps bounds execution (default 100000).
	MaxSteps int
	// Call handles opaque function calls; nil makes any call return Num(0).
	Call func(name string, args []Value) (Value, error)
}

// Interp executes functions of one program against one heap.
type Interp struct {
	prog *lang.Program
	g    *heap.Graph
	// data stores non-pointer field values per (vertex, field).
	data map[dataKey]float64
	// types tracks the struct type of each vertex ("" when unknown).
	types map[heap.Vertex]string
	opts  Options
}

type dataKey struct {
	v heap.Vertex
	f string
}

// New builds an interpreter over prog and the given heap.  vertexType
// optionally declares the struct type of pre-existing vertices (may be nil;
// pointer-field resolution then relies on the variable's static type).
func New(prog *lang.Program, g *heap.Graph, opts Options) *Interp {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 100000
	}
	return &Interp{
		prog:  prog,
		g:     g,
		data:  make(map[dataKey]float64),
		types: make(map[heap.Vertex]string),
		opts:  opts,
	}
}

// Heap returns the (possibly grown or mutated) heap.
func (in *Interp) Heap() *heap.Graph { return in.g }

// SetData pre-loads a data field value.
func (in *Interp) SetData(v heap.Vertex, field string, x float64) {
	in.data[dataKey{v, field}] = x
}

// Data reads a data field value.
func (in *Interp) Data(v heap.Vertex, field string) float64 {
	return in.data[dataKey{v, field}]
}

// Run executes fnName with the given arguments and returns the return
// value (zero Value for void) and the access trace.
func (in *Interp) Run(fnName string, args ...Value) (Value, *Trace, error) {
	fn := in.prog.Func(fnName)
	if fn == nil {
		return Value{}, nil, fmt.Errorf("interp: function %q not found", fnName)
	}
	if len(args) != len(fn.Params) {
		return Value{}, nil, fmt.Errorf("interp: %s expects %d arguments, got %d", fnName, len(fn.Params), len(args))
	}
	ex := &exec{in: in, vars: make(map[string]Value), varTypes: make(map[string]string), trace: &Trace{}}
	for i, p := range fn.Params {
		ex.vars[p.Name] = args[i]
		if p.Type.IsPointerToStruct() {
			ex.varTypes[p.Name] = p.Type.Base
			if args[i].IsPtr && !args[i].Null {
				in.types[args[i].Vertex] = p.Type.Base
			}
		}
	}
	ret, err := ex.block(fn.Body)
	return ret.val, ex.trace, err
}

// flow signals early exit from a block.
type flow struct {
	returned bool
	val      Value
}

type exec struct {
	in       *Interp
	vars     map[string]Value
	varTypes map[string]string
	trace    *Trace
}

func (ex *exec) step() error {
	ex.trace.Steps++
	if ex.trace.Steps > ex.in.opts.MaxSteps {
		return fmt.Errorf("interp: step budget (%d) exhausted — non-terminating loop?", ex.in.opts.MaxSteps)
	}
	return nil
}

func (ex *exec) block(b *lang.Block) (flow, error) {
	for _, s := range b.Stmts {
		fl, err := ex.stmt(s)
		if err != nil || fl.returned {
			return fl, err
		}
	}
	return flow{}, nil
}

func (ex *exec) stmt(s lang.Stmt) (flow, error) {
	if err := ex.step(); err != nil {
		return flow{}, err
	}
	switch v := s.(type) {
	case *lang.DeclStmt:
		for _, item := range v.Items {
			if item.Type.IsPointerToStruct() {
				ex.varTypes[item.Name] = item.Type.Base
				ex.vars[item.Name] = NullPtr()
			} else {
				ex.vars[item.Name] = Num(0)
			}
		}
		return flow{}, nil

	case *lang.AssignStmt:
		return flow{}, ex.assign(v)

	case *lang.ExprStmt:
		_, err := ex.eval(v.X, v.Label())
		return flow{}, err

	case *lang.ReturnStmt:
		if v.Value == nil {
			return flow{returned: true}, nil
		}
		val, err := ex.eval(v.Value, v.Label())
		return flow{returned: true, val: val}, err

	case *lang.BlockStmt:
		return ex.block(v.Body)

	case *lang.IfStmt:
		cond, err := ex.eval(v.Cond, v.Label())
		if err != nil {
			return flow{}, err
		}
		if cond.truthy() {
			return ex.block(v.Then)
		}
		if v.Else != nil {
			return ex.block(v.Else)
		}
		return flow{}, nil

	case *lang.WhileStmt:
		for {
			if err := ex.step(); err != nil {
				return flow{}, err
			}
			cond, err := ex.eval(v.Cond, v.Label())
			if err != nil {
				return flow{}, err
			}
			if !cond.truthy() {
				return flow{}, nil
			}
			fl, err := ex.block(v.Body)
			if err != nil || fl.returned {
				return fl, err
			}
		}
	}
	return flow{}, fmt.Errorf("interp: unsupported statement %T", s)
}

func (ex *exec) assign(s *lang.AssignStmt) error {
	rhs, err := ex.eval(s.RHS, s.Label())
	if err != nil {
		return err
	}
	switch lhs := s.LHS.(type) {
	case *lang.Ident:
		ex.vars[lhs.Name] = rhs
		return nil
	case *lang.FieldAccess:
		base, ok := ex.vars[lhs.Base]
		if !ok || !base.IsPtr {
			return fmt.Errorf("interp: %s is not a pointer", lhs.Base)
		}
		if base.Null {
			return fmt.Errorf("interp: null dereference writing %s->%s", lhs.Base, lhs.Field)
		}
		ex.record(s.Label(), lhs.Base, lhs.Field, base.Vertex, true)
		if ex.pointerField(lhs.Base, lhs.Field) {
			if !rhs.IsPtr {
				return fmt.Errorf("interp: storing a number into pointer field %s", lhs.Field)
			}
			if rhs.Null {
				ex.in.g.ClearEdge(base.Vertex, lhs.Field)
			} else {
				ex.in.g.SetEdge(base.Vertex, lhs.Field, rhs.Vertex)
			}
			return nil
		}
		ex.in.data[dataKey{base.Vertex, lhs.Field}] = rhs.Num
		return nil
	}
	return fmt.Errorf("interp: unsupported assignment target %T", s.LHS)
}

func (ex *exec) pointerField(varName, field string) bool {
	t := ex.varTypes[varName]
	if t == "" {
		return false
	}
	sd := ex.in.prog.Struct(t)
	if sd == nil {
		return false
	}
	fd := sd.Field(field)
	return fd != nil && fd.Type.IsPointerToStruct()
}

func (ex *exec) record(label, varName, field string, v heap.Vertex, write bool) {
	if label == "" {
		return
	}
	ex.trace.Events = append(ex.trace.Events, Event{
		Label: label, Var: varName, Field: field, Vertex: v, IsWrite: write,
	})
}

func (ex *exec) eval(e lang.Expr, label string) (Value, error) {
	switch v := e.(type) {
	case *lang.Ident:
		val, ok := ex.vars[v.Name]
		if !ok {
			return Value{}, fmt.Errorf("interp: undefined variable %s", v.Name)
		}
		return val, nil

	case *lang.NumLit:
		x, err := strconv.ParseFloat(v.Text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("interp: bad number %q", v.Text)
		}
		return Num(x), nil

	case *lang.NullLit:
		return NullPtr(), nil

	case *lang.FieldAccess:
		base, ok := ex.vars[v.Base]
		if !ok || !base.IsPtr {
			return Value{}, fmt.Errorf("interp: %s is not a pointer", v.Base)
		}
		if base.Null {
			return Value{}, fmt.Errorf("interp: null dereference reading %s->%s", v.Base, v.Field)
		}
		ex.record(label, v.Base, v.Field, base.Vertex, false)
		if ex.pointerField(v.Base, v.Field) {
			if w, ok := ex.in.g.Edge(base.Vertex, v.Field); ok {
				return Ptr(w), nil
			}
			return NullPtr(), nil
		}
		return Num(ex.in.data[dataKey{base.Vertex, v.Field}]), nil

	case *lang.MallocExpr:
		w := ex.in.g.AddVertex()
		if v.Of != "" {
			ex.in.types[w] = v.Of
		}
		return Ptr(w), nil

	case *lang.CallExpr:
		args := make([]Value, len(v.Args))
		for i, a := range v.Args {
			val, err := ex.eval(a, label)
			if err != nil {
				return Value{}, err
			}
			args[i] = val
		}
		if ex.in.opts.Call != nil {
			return ex.in.opts.Call(v.Name, args)
		}
		return Num(0), nil

	case *lang.UnaryExpr:
		x, err := ex.eval(v.X, label)
		if err != nil {
			return Value{}, err
		}
		switch v.Op {
		case "!":
			if x.truthy() {
				return Num(0), nil
			}
			return Num(1), nil
		case "-":
			return Num(-x.Num), nil
		}
		return Value{}, fmt.Errorf("interp: unsupported unary %q", v.Op)

	case *lang.BinaryExpr:
		l, err := ex.eval(v.L, label)
		if err != nil {
			return Value{}, err
		}
		r, err := ex.eval(v.R, label)
		if err != nil {
			return Value{}, err
		}
		return binop(v.Op, l, r)
	}
	return Value{}, fmt.Errorf("interp: unsupported expression %T", e)
}

func binop(op string, l, r Value) (Value, error) {
	boolNum := func(b bool) Value {
		if b {
			return Num(1)
		}
		return Num(0)
	}
	// Pointer comparisons.
	if l.IsPtr || r.IsPtr {
		eq := l.IsPtr == r.IsPtr && l.Null == r.Null && (l.Null || l.Vertex == r.Vertex)
		// Comparing a pointer with literal 0 treats 0 as null.
		if !l.IsPtr && l.Num == 0 {
			eq = r.Null
		}
		if !r.IsPtr && r.Num == 0 {
			eq = l.Null
		}
		switch op {
		case "==":
			return boolNum(eq), nil
		case "!=":
			return boolNum(!eq), nil
		}
		return Value{}, fmt.Errorf("interp: operator %q on pointers", op)
	}
	switch op {
	case "+":
		return Num(l.Num + r.Num), nil
	case "-":
		return Num(l.Num - r.Num), nil
	case "*":
		return Num(l.Num * r.Num), nil
	case "/":
		if r.Num == 0 {
			return Value{}, fmt.Errorf("interp: division by zero")
		}
		return Num(l.Num / r.Num), nil
	case "==":
		return boolNum(l.Num == r.Num), nil
	case "!=":
		return boolNum(l.Num != r.Num), nil
	case "<":
		return boolNum(l.Num < r.Num), nil
	case ">":
		return boolNum(l.Num > r.Num), nil
	case "<=":
		return boolNum(l.Num <= r.Num), nil
	case ">=":
		return boolNum(l.Num >= r.Num), nil
	case "&&":
		return boolNum(l.truthy() && r.truthy()), nil
	case "||":
		return boolNum(l.truthy() || r.truthy()), nil
	}
	return Value{}, fmt.Errorf("interp: unsupported operator %q", op)
}
