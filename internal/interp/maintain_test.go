package interp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/axiom"
	"repro/internal/heap"
	"repro/internal/lang"
)

const listOps = `
struct Node { struct Node *link; int f; };

void insertAfter(struct Node *pos) {
	struct Node *n;
	struct Node *rest;
	n = malloc(struct Node);
	rest = pos->link;
	n->link = rest;
	pos->link = n;
}

void reverseInPlace(struct Node *head) {
	struct Node *prev;
	struct Node *cur;
	struct Node *next;
	prev = NULL;
	cur = head;
	while (cur != NULL) {
		next = cur->link;
		cur->link = prev;
		prev = cur;
		cur = next;
	}
}

void makeCycle(struct Node *head) {
	head->link = head;
}
`

func TestMaintainsAxiomsAccepts(t *testing.T) {
	prog := lang.MustParse(listOps)
	set := axiom.SinglyLinkedList("link")
	gen := func(rng *rand.Rand) Instance {
		g, head := heap.BuildList(1+rng.Intn(8), "link")
		return Instance{Graph: g, Args: []Value{Ptr(head)}}
	}
	// Insertion after the head maintains list-ness.
	if err := MaintainsAxioms(prog, "insertAfter", set, gen, 25, 1); err != nil {
		t.Errorf("insertAfter should maintain the axioms: %v", err)
	}
	// In-place reversal maintains list-ness too.
	if err := MaintainsAxioms(prog, "reverseInPlace", set, gen, 25, 2); err != nil {
		t.Errorf("reverseInPlace should maintain the axioms: %v", err)
	}
}

func TestMaintainsAxiomsRejectsCycleMaker(t *testing.T) {
	prog := lang.MustParse(listOps)
	set := axiom.SinglyLinkedList("link")
	gen := func(rng *rand.Rand) Instance {
		g, head := heap.BuildList(2+rng.Intn(4), "link")
		return Instance{Graph: g, Args: []Value{Ptr(head)}}
	}
	err := MaintainsAxioms(prog, "makeCycle", set, gen, 10, 3)
	if err == nil {
		t.Fatal("makeCycle must be caught violating acyclicity")
	}
	if !strings.Contains(err.Error(), "broke the axioms") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestMaintainsAxiomsRejectsBadGeneratorAndRuntime(t *testing.T) {
	prog := lang.MustParse(listOps)
	set := axiom.SinglyLinkedList("link")
	// Generator producing a non-conforming heap (a ring).
	badGen := func(rng *rand.Rand) Instance {
		g, head := heap.BuildRing(3, "link")
		return Instance{Graph: g, Args: []Value{Ptr(head)}}
	}
	if err := MaintainsAxioms(prog, "insertAfter", set, badGen, 3, 4); err == nil {
		t.Error("non-conforming generated instance must be reported")
	}
	// Runtime failure (null dereference) is reported, not swallowed.
	nullGen := func(rng *rand.Rand) Instance {
		g, _ := heap.BuildList(1, "link")
		return Instance{Graph: g, Args: []Value{NullPtr()}}
	}
	if err := MaintainsAxioms(prog, "insertAfter", set, nullGen, 1, 5); err == nil {
		t.Error("runtime error must be reported")
	}
}
