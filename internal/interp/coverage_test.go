package interp

import (
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/lang"
)

func run1(t *testing.T, src, fn string, args ...Value) (Value, *Trace, error) {
	t.Helper()
	prog := lang.MustParse(src)
	g, head := heap.BuildList(3, "n")
	in := New(prog, g, Options{})
	if len(args) == 0 {
		args = []Value{Ptr(head)}
	}
	return in.Run(fn, args...)
}

func TestOperatorMatrix(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
int ops(struct T *x) {
	int a;
	a = 0;
	if (1 <= 1 && 2 >= 2 && 1 < 2 && 2 > 1 && 1 == 1 && 1 != 2) { a = a + 1; }
	if (0 || 1) { a = a + 1; }
	if (!0) { a = a + 1; }
	if (-1 < 0) { a = a + 1; }
	a = a + 6 / 3 - 1 * 2;
	return a;
}
`
	ret, _, err := run1(t, src, "ops")
	if err != nil {
		t.Fatal(err)
	}
	if ret.Num != 4 {
		t.Errorf("ops = %v, want 4", ret.Num)
	}
}

func TestPointerComparisonVariants(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
int cmp(struct T *x) {
	struct T *y;
	int a;
	a = 0;
	y = x;
	if (x == y) { a = a + 1; }
	y = x->n;
	if (x != y) { a = a + 1; }
	y = NULL;
	if (y == 0) { a = a + 1; }
	if (0 == y) { a = a + 1; }
	if (x != NULL) { a = a + 1; }
	return a;
}
`
	ret, _, err := run1(t, src, "cmp")
	if err != nil {
		t.Fatal(err)
	}
	if ret.Num != 5 {
		t.Errorf("cmp = %v, want 5", ret.Num)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := map[string]string{
		"store num into ptr field": `
struct T { struct T *n; int v; };
void f(struct T *x) { x->n = 5; }`,
		"deref a number": `
struct T { struct T *n; int v; };
void f(struct T *x) { int i; i = 1; x = i->n; }`,
		"null field write": `
struct T { struct T *n; int v; };
void f(struct T *x) { struct T *y; y = NULL; y->v = 1; }`,
		"ptr arithmetic": `
struct T { struct T *n; int v; };
void f(struct T *x) { int i; i = x + 1; }`,
		"undefined var": `
struct T { struct T *n; int v; };
void f(struct T *x) { x = zz; }`,
	}
	for name, src := range cases {
		if _, _, err := run1(t, src, "f"); err == nil {
			t.Errorf("%s: expected runtime error", name)
		}
	}
}

func TestUnaryOnPointersAndReturnVoid(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
int g(struct T *x) {
	if (!x) { return 1; }
	return 0;
}
void h(struct T *x) { return; }
`
	ret, _, err := run1(t, src, "g")
	if err != nil {
		t.Fatal(err)
	}
	if ret.Num != 0 {
		t.Errorf("g(non-null) = %v", ret.Num)
	}
	prog := lang.MustParse(src)
	g2, head := heap.BuildList(1, "n")
	in := New(prog, g2, Options{})
	nul, _, err := in.Run("g", NullPtr())
	if err != nil || nul.Num != 1 {
		t.Errorf("g(null) = %v, %v", nul.Num, err)
	}
	if _, _, err := in.Run("h", Ptr(head)); err != nil {
		t.Errorf("void return: %v", err)
	}
}

func TestTraceStepsAndHeapAccessors(t *testing.T) {
	src := `
struct T { struct T *n; int v; };
void f(struct T *x) {
A:	x->v = 2;
B:	x->v = x->v + 1;
}
`
	prog := lang.MustParse(src)
	g, head := heap.BuildList(2, "n")
	in := New(prog, g, Options{})
	if in.Heap() != g {
		t.Error("Heap accessor lost the graph")
	}
	_, trace, err := in.Run("f", Ptr(head))
	if err != nil {
		t.Fatal(err)
	}
	if trace.Steps == 0 {
		t.Error("no steps counted")
	}
	if len(trace.At("A")) != 1 || len(trace.At("B")) != 2 {
		t.Errorf("events A=%d B=%d, want 1 and 2 (read+write)", len(trace.At("A")), len(trace.At("B")))
	}
	if in.Data(head, "v") != 3 {
		t.Errorf("v = %v, want 3", in.Data(head, "v"))
	}
}

func TestBadNumberLiteral(t *testing.T) {
	// The lexer accepts 1.2.3 as a NUMBER token; evaluation must reject it.
	src := `
struct T { struct T *n; int v; };
void f(struct T *x) { x->v = 1.2.3; }
`
	_, _, err := run1(t, src, "f")
	if err == nil || !strings.Contains(err.Error(), "bad number") {
		t.Errorf("expected bad-number error, got %v", err)
	}
}

func TestValueTruthiness(t *testing.T) {
	if NullPtr().truthy() || !Ptr(0).truthy() {
		t.Error("pointer truthiness")
	}
	if Num(0).truthy() || !Num(2).truthy() {
		t.Error("number truthiness")
	}
}
