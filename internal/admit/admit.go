// Package admit is the admission tier of the query plane: the two-channel
// slots/queue machinery that bounds how much work a process accepts, the
// drain lifecycle that lets it stop cleanly, and the backlog-over-drain-rate
// Retry-After estimator that turns shedding into actionable backpressure.
//
// The model is two nested capacities.  A token in `slots` admits a request
// into the building — it covers both a run slot and a position in the
// bounded queue in front of the run slots, so at most MaxConcurrent +
// QueueDepth requests hold tokens at once and the next one is shed
// immediately (429 + Retry-After) instead of growing an unbounded queue.  A
// token in `run` grants actual execution; admitted requests wait for one,
// bounding concurrency at MaxConcurrent.
//
// The same Controller backs both the single-node server (internal/serve)
// and the cluster router (internal/route): admission control is transport-
// and execution-agnostic, which is the point of splitting it out of the
// serve monolith.
package admit

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// RetryAfterWindow is the completion-rate lookback for the Retry-After
// estimator, and RetryAfterMax the ceiling: a Retry-After beyond a minute
// stops being backpressure and starts being an outage announcement.
const (
	RetryAfterWindow = 10 * time.Second
	RetryAfterMax    = 60
)

// Controller owns one process's admission state.  All methods are safe for
// concurrent use.
type Controller struct {
	slots chan struct{} // admission tokens: run slots + bounded queue
	run   chan struct{} // run slots

	mu       sync.Mutex // guards draining vs. inflight.Add
	draining bool
	inflight sync.WaitGroup

	// completions feeds the Retry-After estimator: one observation per
	// completed request.  Controller-owned (not drawn from a telemetry set,
	// which may be absent) because shedding must be able to estimate drain
	// rate even on an uninstrumented process.
	completions *telemetry.WindowHistogram

	accepted  atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	refused   atomic.Int64 // rejected because draining
	gauge     atomic.Int64 // requests admitted and not yet completed
}

// New builds a Controller with maxConcurrent run slots and a queue of
// queueDepth admitted-but-waiting requests in front of them.
func New(maxConcurrent, queueDepth int) *Controller {
	return &Controller{
		slots:       make(chan struct{}, maxConcurrent+queueDepth),
		run:         make(chan struct{}, maxConcurrent),
		completions: telemetry.NewWindowHistogram(),
	}
}

// TryAcquire claims an admission token without blocking; false means the
// building is full (MaxConcurrent running + QueueDepth queued) and the
// caller should shed with 429 + RetryAfterSeconds.
func (c *Controller) TryAcquire() bool {
	select {
	case c.slots <- struct{}{}:
		return true
	default:
		c.shed.Add(1)
		return false
	}
}

// Release returns an admission token claimed by TryAcquire.
func (c *Controller) Release() { <-c.slots }

// Begin registers one in-flight request unless the controller is draining
// (in which case it counts a refusal and the caller should answer 503).
// Every successful Begin must be paired with exactly one Finish.
func (c *Controller) Begin() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		c.refused.Add(1)
		return false
	}
	c.inflight.Add(1)
	c.gauge.Add(1)
	c.accepted.Add(1)
	return true
}

// Finish completes a Begin: the request left the building, the drain (if
// any) may observe it, and the completion feeds the Retry-After rate.
func (c *Controller) Finish() {
	c.gauge.Add(-1)
	c.completed.Add(1)
	c.completions.Observe(1)
	c.inflight.Done()
}

// AcquireRun waits for a run slot; false means ctx expired first (the
// client hung up while queued).  Admitted requests finish even during a
// drain, so the drain itself never aborts the wait.
func (c *Controller) AcquireRun(ctx context.Context) bool {
	select {
	case c.run <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// ReleaseRun returns a run slot.
func (c *Controller) ReleaseRun() { <-c.run }

// Drain stops admitting requests and waits for every in-flight one to
// finish, or for ctx to expire.  Safe to call more than once.
func (c *Controller) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain interrupted with %d requests in flight: %w", c.gauge.Load(), ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// RetryAfterSeconds estimates how long a shed client should wait before the
// backlog it just bounced off has drained: backlog / recent completion
// rate, rounded up, clamped to [1, RetryAfterMax].  With no completions in
// the window there is no rate to extrapolate (an idle process that just got
// burst-filled), so it answers the 1-second floor.
func (c *Controller) RetryAfterSeconds() int {
	backlog := len(c.slots)
	done := c.completions.Summary(RetryAfterWindow).Count
	if backlog == 0 || done == 0 {
		return 1
	}
	windowSec := int64(RetryAfterWindow / time.Second)
	secs := (int64(backlog)*windowSec + done - 1) / done
	if secs < 1 {
		secs = 1
	}
	if secs > RetryAfterMax {
		secs = RetryAfterMax
	}
	return int(secs)
}

// Slots exposes the admission-token channel and Run the run-slot channel.
// They exist for composition (serve's white-box tests jam the queue by
// occupying slots directly) — treat them as the capacities they are, not as
// general-purpose channels.
func (c *Controller) Slots() chan struct{} { return c.slots }

// Run exposes the run-slot channel; see Slots.
func (c *Controller) Run() chan struct{} { return c.run }

// Gauge exposes the in-flight gauge (admitted and not yet completed).
func (c *Controller) Gauge() *atomic.Int64 { return &c.gauge }

// Completions exposes the completion window feeding RetryAfterSeconds.
func (c *Controller) Completions() *telemetry.WindowHistogram { return c.completions }

// NoteShed counts an externally decided shed (a router propagating a
// backend's 429 sheds without TryAcquire having failed locally).
func (c *Controller) NoteShed() { c.shed.Add(1) }

// Counts returns the lifecycle counters: accepted, completed, shed,
// refused-while-draining.
func (c *Controller) Counts() (accepted, completed, shed, refused int64) {
	return c.accepted.Load(), c.completed.Load(), c.shed.Load(), c.refused.Load()
}
