// Package repro is a from-scratch Go reproduction of
//
//	J. Hummel, L. J. Hendren, A. Nicolau,
//	"A General Data Dependence Test for Dynamic, Pointer-Based Data
//	Structures", PLDI 1994
//
// — the APT axiom-based pointer dependence test, together with every
// substrate its evaluation depends on: the path-expression language and
// automata layer, the theorem prover, the access-path-matrix flow analysis
// over a mini-C frontend, the Larus-Hilfinger and k-limited baselines, the
// orthogonal-list sparse matrix kernels of §5, and the simulated
// multiprocessor that regenerates Figure 7.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
// The root package holds no code; bench_test.go hosts one benchmark per
// table/figure plus the ablations called out in DESIGN.md.
package repro
