// The paper's §3.3 example: a leaf-linked binary tree (Figure 3) and the
// subroutine whose statements S and T APT proves independent.
struct LLBinaryTree {
	struct LLBinaryTree *L;
	struct LLBinaryTree *R;
	struct LLBinaryTree *N;
	int d;
	axioms {
		A1: forall p, p.L <> p.R;
		A2: forall p <> q, p.(L|R) <> q.(L|R);
		A3: forall p <> q, p.N <> q.N;
		A4: forall p, p.(L|R|N)+ <> p.eps;
	}
};

int subr(struct LLBinaryTree *root) {
	struct LLBinaryTree *p;
	struct LLBinaryTree *q;
	root = root->L;
	p = root->L;
	p = p->N;
S:	p->d = 100;
	p = root;
I:	q = root->R;
	q = q->N;
T:	return q->d;
}
