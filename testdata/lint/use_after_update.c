// A handle computed through field nx is used after a destructive update
// rewrote nx: the §3.4 hazard the axiom windows exist to contain.
struct N {
	struct N *nx;
	int d;
};

void splice(struct N *a) {
	struct N *t;
	t = a->nx;
	if (t != NULL) {
		a->nx = NULL;
		t->d = 1;
	}
}
