// A contradictory axiom set: A1's sides share the word "r", so it asserts a
// vertex is distinct from itself; E1 asserts an equality that A2 refutes.
// A3 duplicates A2.
struct T {
	struct T *l;
	struct T *r;
	axioms {
		A1: forall p, p.(l|r) <> p.r;
		A2: forall p, p.l <> p.r;
		A3: forall p, p.l <> p.r;
		E1: forall p, p.l = p.r;
	}
};

int touch(struct T *t) {
	return 0;
}
