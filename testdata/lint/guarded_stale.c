// Path-sensitive stale-handle analysis: the destructive update of next
// happens only when fix is set, and the handle t is used only when it is
// not.  The two branch outcomes of one evaluation of fix are mutually
// exclusive, so the use-after-update hazard cannot occur — the warning
// upgrades to a guard-citing all-clear.
struct N {
	struct N *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void patch(struct N *h, int fix) {
	struct N *t;
	t = h->next;
	if (t == NULL) {
		return;
	}
	if (fix) {
		h->next = t->next;
	}
	if (!fix) {
		h->v = t->v;
	}
}
