// Handle-safety fodder: a never-initialized handle, a definite NULL
// dereference, a dereference under a == NULL guard, and a guard that makes a
// dereference safe.
struct Node {
	struct Node *next;
	int d;
};

int bad(struct Node *h) {
	struct Node *p;
	struct Node *q;
	q = NULL;
	p->d = 1;
	q->d = 2;
	if (h == NULL) {
		h->d = 3;
	}
	return 0;
}

int good(struct Node *h) {
	struct Node *r;
	r = h->next;
	if (r != NULL) {
		r->d = 4;
	}
	return 0;
}
