// A DOALL-safe loop: the acyclicity axiom lets the dependence test prove
// iteration i's write p->v disjoint from iteration j's (§5).
struct Cell {
	struct Cell *next;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void scale(struct Cell *l) {
	struct Cell *p;
	p = l;
	while (p != NULL) {
L:		p->v = 2;
		p = p->next;
	}
}
