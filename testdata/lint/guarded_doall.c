// Path-sensitive DOALL: the write at A runs only when mode is set, the
// read at B only when it is not.  B reaches its cell through the jump
// field, which no axiom constrains, so the prover alone cannot separate
// the two accesses — without guard analysis the loop is a Maybe.  The
// branch guards "mode" and "!(mode)" contradict, so the cross-iteration
// A-B queries upgrade to a definite No and the loop is DOALL-legal.
struct Node {
	struct Node *next;
	struct Node *jump;
	int v;
	axioms {
		A1: forall p, p.next+ <> p.eps;
	}
};

void sweep(struct Node *h, int mode) {
	struct Node *p;
	struct Node *r;
	int t;
	t = 0;
	p = h;
	while (p != NULL) {
		if (mode) {
A:			p->v = 1;
		} else {
			r = p->jump;
			if (r != NULL) {
B:				t = t + r->v;
			}
		}
		p = p->next;
	}
}
