// An unsafe loop: every iteration writes a->sum, a provable loop-carried
// output dependence, so DOALL parallelization is illegal.
struct Acc {
	struct Acc *next;
	int sum;
	int v;
};

void accumulate(struct Acc *a, struct Acc *l) {
	while (l != NULL) {
		a->sum = a->sum + l->v;
		l = l->next;
	}
}
