// Hygiene-pass fodder: a field of an undeclared struct type, an access to a
// field the struct does not declare, a dead store, and unreachable code.
struct H {
	int a;
	struct M *m;
};

int f(struct H *h) {
	int x;
	x = h->b;
	return x;
	x = 0;
}
