// A program every pass accepts: no diagnostics, exit status 0.
struct K {
	int v;
};

int get(struct K *k) {
	return k->v;
}
