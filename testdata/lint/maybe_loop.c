// A loop the test cannot classify: struct Ring declares no acyclicity axiom
// (the list may be circular), so iteration i's write p->v and iteration j's
// write p.next+->v cannot be proved disjoint.
struct Ring {
	struct Ring *next;
	int v;
};

void bump(struct Ring *s, int k) {
	struct Ring *p;
	int i;
	p = s;
	i = 0;
	while (i < k) {
		p->v = i;
		p = p->next;
		i = i + 1;
	}
}
