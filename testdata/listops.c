// List mutators for axiomcheck -maintain: insertion and in-place reversal
// preserve list-ness; makeCycle does not (§3.4's verification concern).
struct Node { struct Node *next; int f; };

void insertAfter(struct Node *pos) {
	struct Node *n;
	struct Node *rest;
	n = malloc(struct Node);
	rest = pos->next;
	n->next = rest;
	pos->next = n;
}

void makeCycle(struct Node *head) {
	head->next = head;
}
