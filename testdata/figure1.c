// Figure 1's right fragment: the list-update loop whose loop-carried output
// dependence on U is false when the list is acyclic.
struct Node {
	struct Node *link;
	int f;
	axioms {
		forall p <> q, p.link <> q.link;
		forall p, p.link+ <> p.eps;
	}
};

void update(struct Node *head) {
	struct Node *q;
	q = head;
	while (q != NULL) {
U:		q->f = fun();
		q = q->link;
	}
}
