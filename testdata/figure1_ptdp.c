// Figure 1's left fragment: the pointer TARGET dependence problem.  There
// is an output dependence from S to T iff p points to i at S.
void f() {
	int i;
	int j;
	int *p;
	p = &i;
S:	*p = 10;
T:	i = 20;
}
